// Random-pattern test generation: the standard baseline ATPG compares
// against, and the source of the coverage-vs-pattern-count curves used to
// quantify how much the deterministic flow (and the paper's new
// observation methods) buy.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault_sim.hpp"

namespace cpsinw::faults {

/// Options of a random-pattern campaign.
struct RandomPatternOptions {
  std::uint64_t seed = 1;
  int max_patterns = 256;
  /// Probability of a 1 on each input (0.5 = uniform; other values give
  /// weighted random patterns).
  double one_probability = 0.5;
  /// Stop after this many consecutive patterns without a new detection.
  int stale_limit = 64;
  FaultSimOptions sim;
};

/// One point of the coverage curve.
struct CoveragePoint {
  int patterns = 0;
  int detected = 0;
  double coverage = 0.0;
};

/// Result of a campaign.
struct RandomPatternResult {
  std::vector<logic::Pattern> patterns;   ///< the applied sequence
  std::vector<CoveragePoint> curve;       ///< one point per pattern
  int total_faults = 0;

  [[nodiscard]] double final_coverage() const {
    return curve.empty() ? 0.0 : curve.back().coverage;
  }
};

/// Runs a random-pattern campaign against a fault list, recording the
/// cumulative coverage after every pattern.  Detection uses the same
/// machinery as the deterministic flow (line faults via packed simulation;
/// transistor faults via dictionaries, with IDDQ observation when the
/// options allow it).
[[nodiscard]] RandomPatternResult run_random_patterns(
    const logic::Circuit& ckt, const std::vector<Fault>& faults,
    const RandomPatternOptions& options = {});

}  // namespace cpsinw::faults
