// Circuit-level fault taxonomy: classical line stuck-at faults plus the
// transistor-level fault classes of the paper (stuck-open/channel break,
// stuck-on, and the new stuck-at-n-type / stuck-at-p-type polarity faults).
#pragma once

#include <string>

#include "gates/cell.hpp"
#include "logic/circuit.hpp"

namespace cpsinw::faults {

/// Where a fault lives.
enum class FaultSite {
  kNet,             ///< stuck-at on a net (stem)
  kGateInput,       ///< stuck-at on one gate input branch
  kGateTransistor,  ///< transistor fault inside a gate
};

/// A single fault instance.
struct Fault {
  FaultSite site = FaultSite::kNet;

  // Line stuck-at fields (kNet / kGateInput).
  logic::NetId net = -1;
  int gate = -1;  ///< also used by kGateTransistor
  int pin = -1;   ///< input pin index for kGateInput
  bool stuck_at_one = false;

  // Transistor fault fields (kGateTransistor).
  gates::CellFault cell_fault;

  /// Stable ordering/identity for containers.
  [[nodiscard]] bool operator==(const Fault&) const = default;

  /// Human-readable description, e.g. "net sum SA0" or
  /// "XOR3_0.t2 stuck-at-n-type".
  [[nodiscard]] std::string describe(const logic::Circuit& ckt) const;

  [[nodiscard]] static Fault net_stuck(logic::NetId net, bool sa1) {
    Fault f;
    f.site = FaultSite::kNet;
    f.net = net;
    f.stuck_at_one = sa1;
    return f;
  }

  [[nodiscard]] static Fault input_stuck(int gate, int pin, bool sa1) {
    Fault f;
    f.site = FaultSite::kGateInput;
    f.gate = gate;
    f.pin = pin;
    f.stuck_at_one = sa1;
    return f;
  }

  [[nodiscard]] static Fault transistor(int gate, int t,
                                        gates::TransistorFault kind) {
    Fault f;
    f.site = FaultSite::kGateTransistor;
    f.gate = gate;
    f.cell_fault = {t, kind};
    return f;
  }
};

}  // namespace cpsinw::faults
