#include "faults/random_patterns.hpp"

#include <cstdint>
#include <stdexcept>

#include "gates/dictionary_cache.hpp"
#include "util/rng.hpp"

namespace cpsinw::faults {

using logic::LogicV;
using logic::Pattern;

RandomPatternResult run_random_patterns(const logic::Circuit& ckt,
                                        const std::vector<Fault>& faults,
                                        const RandomPatternOptions& options) {
  if (options.max_patterns < 1)
    throw std::invalid_argument("run_random_patterns: max_patterns >= 1");
  if (options.one_probability <= 0.0 || options.one_probability >= 1.0)
    throw std::invalid_argument(
        "run_random_patterns: one_probability must be in (0,1)");

  const logic::Simulator sim(ckt);
  // One compilation for the whole run (also backing `sim`); building an
  // EvalContext per generated pattern would recompile the circuit each
  // time.
  const logic::CompiledCircuit& cc = sim.compiled();
  util::SplitMix64 rng(options.seed);

  // Per-transistor-fault cached dictionary and retained net state, so that
  // floating outputs carry charge across the random sequence (chance
  // two-pattern stuck-open detection); per-line-fault validated compiled
  // descriptors.
  struct TransState {
    logic::GateFault gf;
    const gates::FaultAnalysis* fa = nullptr;
    std::vector<LogicV> state;
  };
  std::vector<TransState> trans(faults.size());
  std::vector<logic::CompiledCircuit::LineFault> line(faults.size());
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    const Fault& f = faults[fi];
    if (f.site != FaultSite::kGateTransistor) {
      line[fi] = checked_line_fault(ckt, f);
      continue;
    }
    trans[fi].gf = {f.gate, f.cell_fault};
    trans[fi].fa = &gates::DictionaryCache::global().lookup(
        ckt.gate(f.gate).kind, f.cell_fault);
  }

  RandomPatternResult result;
  result.total_faults = static_cast<int>(faults.size());
  std::vector<char> detected(faults.size(), 0);
  int detected_count = 0;
  int stale = 0;

  std::vector<std::uint64_t> good_words;
  std::vector<std::uint64_t> faulty_words;
  for (int k = 0; k < options.max_patterns; ++k) {
    Pattern p(ckt.primary_inputs().size());
    for (auto& v : p)
      v = logic::from_bool(rng.chance(options.one_probability));

    // Per generated pattern: the scalar good machine and the packed good
    // words are computed once here, not once per fault below.
    const logic::SimResult good = sim.simulate(p);
    const auto pi_words = logic::pack_patterns(ckt, {p});
    cc.init_packed(pi_words, good_words);
    cc.eval_packed(good_words);

    bool progress = false;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      const Fault& f = faults[fi];
      bool hit = false;
      if (f.site == FaultSite::kGateTransistor) {
        TransState& ts = trans[fi];
        const bool has_state =
            options.sim.sequential_patterns && !ts.state.empty();
        const logic::SimResult bad = sim.simulate_faulty_with(
            p, ts.gf, *ts.fa, has_state ? &ts.state : nullptr);
        if (options.sim.sequential_patterns) ts.state = bad.net_values;
        if (detected[fi]) continue;
        if (bad.iddq_flag && options.sim.observe_iddq) hit = true;
        for (const logic::NetId po : ckt.primary_outputs()) {
          const LogicV g = good.value(po);
          const LogicV b = bad.value(po);
          if (is_binary(g) && is_binary(b) && g != b) hit = true;
        }
      } else {
        if (detected[fi]) continue;
        cc.init_packed(pi_words, faulty_words);
        cc.eval_packed_line(faulty_words, line[fi]);
        for (const logic::NetId po : ckt.primary_outputs())
          if (((good_words[static_cast<std::size_t>(po)] ^
                faulty_words[static_cast<std::size_t>(po)]) &
               1ull) != 0) {
            hit = true;
            break;
          }
      }
      if (hit && !detected[fi]) {
        detected[fi] = 1;
        ++detected_count;
        progress = true;
      }
    }

    result.patterns.push_back(std::move(p));
    result.curve.push_back(
        {k + 1, detected_count,
         faults.empty() ? 1.0
                        : static_cast<double>(detected_count) /
                              static_cast<double>(faults.size())});

    stale = progress ? 0 : stale + 1;
    if (stale >= options.stale_limit) break;
    if (detected_count == static_cast<int>(faults.size())) break;
  }
  return result;
}

}  // namespace cpsinw::faults
