#include "faults/random_patterns.hpp"

#include <cstdint>
#include <stdexcept>

#include "gates/dictionary_cache.hpp"
#include "util/rng.hpp"

namespace cpsinw::faults {

using logic::LogicV;
using logic::Pattern;

RandomPatternResult run_random_patterns(const logic::Circuit& ckt,
                                        const std::vector<Fault>& faults,
                                        const RandomPatternOptions& options) {
  if (options.max_patterns < 1)
    throw std::invalid_argument("run_random_patterns: max_patterns >= 1");
  if (options.one_probability <= 0.0 || options.one_probability >= 1.0)
    throw std::invalid_argument(
        "run_random_patterns: one_probability must be in (0,1)");

  const logic::Simulator sim(ckt);
  // One compilation for the whole run (also backing `sim`); building an
  // EvalContext per generated pattern would recompile the circuit each
  // time.
  const logic::CompiledCircuit& cc = sim.compiled();
  util::SplitMix64 rng(options.seed);

  // Per-transistor-fault cached dictionary and retained net state, so that
  // floating outputs carry charge across the random sequence (chance
  // two-pattern stuck-open detection); per-line-fault validated compiled
  // descriptors.
  struct TransState {
    logic::GateFault gf;
    const gates::FaultAnalysis* fa = nullptr;
    std::vector<LogicV> state;
  };
  std::vector<TransState> trans(faults.size());
  std::vector<logic::CompiledCircuit::LineFault> line(faults.size());
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    const Fault& f = faults[fi];
    if (f.site != FaultSite::kGateTransistor) {
      line[fi] = checked_line_fault(ckt, f);
      continue;
    }
    trans[fi].gf = {f.gate, f.cell_fault};
    trans[fi].fa = &gates::DictionaryCache::global().lookup(
        ckt.gate(f.gate).kind, f.cell_fault);
  }

  RandomPatternResult result;
  result.total_faults = static_cast<int>(faults.size());
  std::vector<char> detected(faults.size(), 0);
  int detected_count = 0;
  int stale = 0;

  // Every buffer the per-pattern verification loop touches is hoisted here
  // and reused — the packed good/faulty words, the single-pattern PI
  // words, the scalar good/faulty values — matching the run_range scratch
  // pattern: zero allocations per (pattern, fault) candidate.  (Retained
  // transistor state moves by swap: `faulty_values` hands its storage to
  // ts.state and takes the stale buffer back for the next candidate.)
  std::vector<std::uint64_t> good_words;
  std::vector<std::uint64_t> faulty_words;
  std::vector<std::uint64_t> pi_words(ckt.primary_inputs().size());
  std::vector<LogicV> good_values;
  std::vector<LogicV> faulty_values;
  for (int k = 0; k < options.max_patterns; ++k) {
    Pattern p(ckt.primary_inputs().size());
    for (auto& v : p)
      v = logic::from_bool(rng.chance(options.one_probability));

    // Per generated pattern: the scalar good machine and the packed good
    // words are computed once here, not once per fault below.  Patterns
    // are binary by construction, so packing is bit 0 of each PI word.
    cc.init_scalar(p, good_values);
    cc.eval_scalar(good_values);
    for (std::size_t i = 0; i < p.size(); ++i)
      pi_words[i] = p[i] == LogicV::k1 ? 1ull : 0ull;
    cc.init_packed(pi_words, good_words);
    cc.eval_packed(good_words);

    bool progress = false;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      const Fault& f = faults[fi];
      bool hit = false;
      if (f.site == FaultSite::kGateTransistor) {
        TransState& ts = trans[fi];
        const bool has_state =
            options.sim.sequential_patterns && !ts.state.empty();
        cc.init_scalar(p, faulty_values);
        const bool iddq = cc.eval_scalar_faulty(
            faulty_values, ts.gf.gate, *ts.fa, has_state ? &ts.state : nullptr);
        if (detected[fi]) {
          if (options.sim.sequential_patterns) ts.state.swap(faulty_values);
          continue;
        }
        if (iddq && options.sim.observe_iddq) hit = true;
        for (const logic::NetId po : ckt.primary_outputs()) {
          const LogicV g = good_values[static_cast<std::size_t>(po)];
          const LogicV b = faulty_values[static_cast<std::size_t>(po)];
          if (is_binary(g) && is_binary(b) && g != b) hit = true;
        }
        if (options.sim.sequential_patterns) ts.state.swap(faulty_values);
      } else {
        if (detected[fi]) continue;
        cc.init_packed(pi_words, faulty_words);
        cc.eval_packed_line(faulty_words, line[fi]);
        for (const logic::NetId po : ckt.primary_outputs())
          if (((good_words[static_cast<std::size_t>(po)] ^
                faulty_words[static_cast<std::size_t>(po)]) &
               1ull) != 0) {
            hit = true;
            break;
          }
      }
      if (hit && !detected[fi]) {
        detected[fi] = 1;
        ++detected_count;
        progress = true;
      }
    }

    result.patterns.push_back(std::move(p));
    result.curve.push_back(
        {k + 1, detected_count,
         faults.empty() ? 1.0
                        : static_cast<double>(detected_count) /
                              static_cast<double>(faults.size())});

    stale = progress ? 0 : stale + 1;
    if (stale >= options.stale_limit) break;
    if (detected_count == static_cast<int>(faults.size())) break;
  }
  return result;
}

}  // namespace cpsinw::faults
