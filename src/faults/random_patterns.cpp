#include "faults/random_patterns.hpp"

#include <stdexcept>

#include "faults/eval_context.hpp"
#include "gates/dictionary_cache.hpp"
#include "util/rng.hpp"

namespace cpsinw::faults {

using logic::LogicV;
using logic::Pattern;

RandomPatternResult run_random_patterns(const logic::Circuit& ckt,
                                        const std::vector<Fault>& faults,
                                        const RandomPatternOptions& options) {
  if (options.max_patterns < 1)
    throw std::invalid_argument("run_random_patterns: max_patterns >= 1");
  if (options.one_probability <= 0.0 || options.one_probability >= 1.0)
    throw std::invalid_argument(
        "run_random_patterns: one_probability must be in (0,1)");

  const FaultSimulator fsim(ckt);
  const logic::Simulator sim(ckt);
  util::SplitMix64 rng(options.seed);

  // Per-transistor-fault cached dictionary and retained net state, so that
  // floating outputs carry charge across the random sequence (chance
  // two-pattern stuck-open detection).
  struct TransState {
    logic::GateFault gf;
    const gates::FaultAnalysis* fa = nullptr;
    std::vector<LogicV> state;
  };
  std::vector<TransState> trans(faults.size());
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    const Fault& f = faults[fi];
    if (f.site != FaultSite::kGateTransistor) continue;
    trans[fi].gf = {f.gate, f.cell_fault};
    trans[fi].fa = &gates::DictionaryCache::global().lookup(
        ckt.gate(f.gate).kind, f.cell_fault);
  }

  RandomPatternResult result;
  result.total_faults = static_cast<int>(faults.size());
  std::vector<char> detected(faults.size(), 0);
  int detected_count = 0;
  int stale = 0;

  for (int k = 0; k < options.max_patterns; ++k) {
    Pattern p(ckt.primary_inputs().size());
    for (auto& v : p)
      v = logic::from_bool(rng.chance(options.one_probability));

    // One shared context per generated pattern: the good machine and the
    // packed words are computed once here, not once per fault below.
    const EvalContext ctx(ckt, {p});
    const logic::SimResult& good = ctx.good(0);

    bool progress = false;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      const Fault& f = faults[fi];
      bool hit = false;
      if (f.site == FaultSite::kGateTransistor) {
        TransState& ts = trans[fi];
        const bool has_state =
            options.sim.sequential_patterns && !ts.state.empty();
        const logic::SimResult bad = sim.simulate_faulty_with(
            p, ts.gf, *ts.fa, has_state ? &ts.state : nullptr);
        if (options.sim.sequential_patterns) ts.state = bad.net_values;
        if (detected[fi]) continue;
        if (bad.iddq_flag && options.sim.observe_iddq) hit = true;
        for (const logic::NetId po : ckt.primary_outputs()) {
          const LogicV g = good.value(po);
          const LogicV b = bad.value(po);
          if (is_binary(g) && is_binary(b) && g != b) hit = true;
        }
      } else {
        if (detected[fi]) continue;
        hit = fsim.line_fault_detected(ctx, f, 0);
      }
      if (hit && !detected[fi]) {
        detected[fi] = 1;
        ++detected_count;
        progress = true;
      }
    }

    result.patterns.push_back(std::move(p));
    result.curve.push_back(
        {k + 1, detected_count,
         faults.empty() ? 1.0
                        : static_cast<double>(detected_count) /
                              static_cast<double>(faults.size())});

    stale = progress ? 0 : stale + 1;
    if (stale >= options.stale_limit) break;
    if (detected_count == static_cast<int>(faults.size())) break;
  }
  return result;
}

}  // namespace cpsinw::faults
