#include "faults/ifa.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace cpsinw::faults {

const std::vector<ProcessStep>& all_process_steps() {
  static const std::vector<ProcessStep> steps = {
      ProcessStep::kNanowirePatterning, ProcessStep::kBoschEtch,
      ProcessStep::kOxidation, ProcessStep::kPolyDeposition,
      ProcessStep::kMetallization};
  return steps;
}

const char* to_string(ProcessStep step) {
  switch (step) {
    case ProcessStep::kNanowirePatterning:
      return "HSQ-based nanowire patterning";
    case ProcessStep::kBoschEtch: return "Bosch process";
    case ProcessStep::kOxidation: return "Oxidation process";
    case ProcessStep::kPolyDeposition: return "Polysilicon deposition";
    case ProcessStep::kMetallization: return "Metal layer(s) deposition";
  }
  return "?";
}

const char* outcome_of(ProcessStep step) {
  switch (step) {
    case ProcessStep::kNanowirePatterning:
      return "Initial pattern of nanowires";
    case ProcessStep::kBoschEtch: return "Nanowire formation";
    case ProcessStep::kOxidation: return "Dielectric formation";
    case ProcessStep::kPolyDeposition: return "Polarity and control gates";
    case ProcessStep::kMetallization: return "Interconnections";
  }
  return "?";
}

const char* to_string(DefectMechanism mechanism) {
  switch (mechanism) {
    case DefectMechanism::kNanowireBreak: return "Nanowire break";
    case DefectMechanism::kGateOxideShort: return "Gate oxide short";
    case DefectMechanism::kGateBridge:
      return "Bridge between two or more terminals";
    case DefectMechanism::kInterconnectBridge:
      return "Bridge among interconnects";
    case DefectMechanism::kFloatingGate: return "Floating gate";
  }
  return "?";
}

const std::vector<DefectMechanism>& mechanisms_of(ProcessStep step) {
  // Paper Table I, "Possible defects" column.
  static const std::vector<DefectMechanism> patterning = {
      DefectMechanism::kNanowireBreak};
  static const std::vector<DefectMechanism> bosch = {
      DefectMechanism::kNanowireBreak};
  static const std::vector<DefectMechanism> oxidation = {
      DefectMechanism::kGateOxideShort};
  static const std::vector<DefectMechanism> poly = {
      DefectMechanism::kGateBridge};
  static const std::vector<DefectMechanism> metal = {
      DefectMechanism::kInterconnectBridge, DefectMechanism::kFloatingGate};
  switch (step) {
    case ProcessStep::kNanowirePatterning: return patterning;
    case ProcessStep::kBoschEtch: return bosch;
    case ProcessStep::kOxidation: return oxidation;
    case ProcessStep::kPolyDeposition: return poly;
    case ProcessStep::kMetallization: return metal;
  }
  throw std::invalid_argument("mechanisms_of: bad step");
}

FaultModelCoverage coverage_for(DefectMechanism mechanism,
                                bool dynamic_polarity) {
  FaultModelCoverage c;
  switch (mechanism) {
    case DefectMechanism::kNanowireBreak:
      if (dynamic_polarity) {
        // Sec. V-C: masked by the pass-transistor redundancy; only the new
        // polarity-complement procedure reveals it.
        c.needs_cb_procedure = true;
        c.delay_fault = true;  // residual delay signature (<= 58 %)
      } else {
        c.stuck_open = true;  // classical two-pattern SOF (Sec. V-C)
      }
      break;
    case DefectMechanism::kGateOxideShort:
      // Sec. IV-B / conclusion: detectable through performance parameters.
      c.delay_fault = true;
      c.iddq = true;
      break;
    case DefectMechanism::kGateBridge:
      // Sec. V-B: polarity bridge -> the new stuck-at-n/p-type models; in
      // SP gates the same defect behaves like a channel break (SOF).
      if (dynamic_polarity) {
        c.stuck_at_polarity = true;
        c.iddq = true;
      } else {
        c.stuck_open = true;
      }
      break;
    case DefectMechanism::kInterconnectBridge:
      c.classic_bridge = true;
      c.iddq = true;
      break;
    case DefectMechanism::kFloatingGate:
      // Sec. V-A: fault model depends on the coupled V_cut level — delay
      // fault and stuck-on below the threshold, SOF beyond it.
      c.delay_fault = true;
      c.stuck_on = true;
      c.stuck_open = true;
      break;
  }
  return c;
}

IfaReport run_ifa(const logic::Circuit& ckt, const IfaOptions& options) {
  if (options.sample_count < 0)
    throw std::invalid_argument("run_ifa: negative sample_count");
  if (options.step_weights.size() != all_process_steps().size())
    throw std::invalid_argument("run_ifa: need one weight per step");
  double total_w = 0.0;
  for (const double w : options.step_weights) {
    if (w < 0.0) throw std::invalid_argument("run_ifa: negative weight");
    total_w += w;
  }
  if (total_w <= 0.0) throw std::invalid_argument("run_ifa: zero weights");
  if (ckt.gate_count() == 0)
    throw std::invalid_argument("run_ifa: empty circuit");

  util::SplitMix64 rng(options.seed);
  IfaReport report;
  report.defects.reserve(static_cast<std::size_t>(options.sample_count));

  const auto pick_step = [&]() {
    double roll = rng.next_double() * total_w;
    for (std::size_t i = 0; i < options.step_weights.size(); ++i) {
      roll -= options.step_weights[i];
      if (roll <= 0.0) return all_process_steps()[i];
    }
    return all_process_steps().back();
  };

  // Transistor-weighted gate selection: bigger cells catch more defects.
  std::vector<int> gate_by_transistor;
  for (const logic::GateInst& g : ckt.gates()) {
    const int nt =
        static_cast<int>(gates::cell(g.kind).transistors.size());
    for (int t = 0; t < nt; ++t) gate_by_transistor.push_back(g.id);
  }

  for (int s = 0; s < options.sample_count; ++s) {
    SampledDefect d;
    d.step = pick_step();
    const auto& mechs = mechanisms_of(d.step);
    d.mechanism = mechs[rng.below(mechs.size())];

    const int gid = gate_by_transistor[rng.below(gate_by_transistor.size())];
    const logic::GateInst& g = ckt.gate(gid);
    const int nt = static_cast<int>(gates::cell(g.kind).transistors.size());
    const int t = static_cast<int>(rng.below(static_cast<std::uint64_t>(nt)));
    d.in_dynamic_polarity_gate = gates::is_dynamic_polarity(g.kind);

    switch (d.mechanism) {
      case DefectMechanism::kNanowireBreak:
        d.fault = Fault::transistor(gid, t, gates::TransistorFault::kStuckOpen);
        d.note = d.in_dynamic_polarity_gate
                     ? "masked in DP gate; needs polarity-complement test"
                     : "classical stuck-open";
        if (d.in_dynamic_polarity_gate) ++report.masked_without_cb;
        break;
      case DefectMechanism::kGateOxideShort:
        d.note = "parametric (delay/IDDQ signature, Fig. 3)";
        ++report.parametric_only;
        break;
      case DefectMechanism::kGateBridge:
        d.fault = Fault::transistor(
            gid, t,
            rng.chance(0.5) ? gates::TransistorFault::kStuckAtNType
                            : gates::TransistorFault::kStuckAtPType);
        d.note = "polarity bridge -> stuck-at-n/p-type";
        break;
      case DefectMechanism::kInterconnectBridge: {
        const logic::NetId net =
            static_cast<logic::NetId>(rng.below(
                static_cast<std::uint64_t>(ckt.net_count())));
        d.fault = Fault::net_stuck(net, rng.chance(0.5));
        d.note = "bridge approximated as dominant stuck-at";
        break;
      }
      case DefectMechanism::kFloatingGate:
        d.fault = Fault::transistor(gid, t,
                                    gates::TransistorFault::kStuckOpen);
        d.note = "floating PG; V_cut-dependent (delay/stuck-on/SOF)";
        break;
    }
    ++report.per_step[d.step];
    ++report.per_mechanism[d.mechanism];
    report.defects.push_back(std::move(d));
  }
  return report;
}

}  // namespace cpsinw::faults
