#include "faults/fault_sim.hpp"

#include <stdexcept>

#include "gates/dictionary_cache.hpp"

namespace cpsinw::faults {

using logic::LogicV;
using logic::Pattern;

int FaultSimReport::detected_count() const {
  int n = 0;
  for (const DetectionRecord& r : records)
    if (r.detected(options.observe_iddq)) ++n;
  return n;
}

double FaultSimReport::coverage() const {
  if (records.empty()) return 1.0;
  return static_cast<double>(detected_count()) /
         static_cast<double>(records.size());
}

FaultSimulator::FaultSimulator(const logic::Circuit& ckt)
    : ckt_(ckt), sim_(ckt) {}

void FaultSimulator::check_context(const EvalContext& ctx) const {
  if (&ctx.circuit() != &ckt_)
    throw std::invalid_argument(
        "FaultSimulator: context built for a different circuit");
}

logic::CompiledCircuit::LineFault checked_line_fault(
    const logic::Circuit& ckt, const Fault& fault) {
  logic::CompiledCircuit::LineFault lf;
  lf.stuck_one = fault.stuck_at_one;
  if (fault.site == FaultSite::kNet) {
    if (fault.net < 0 || fault.net >= ckt.net_count())
      throw std::invalid_argument("line fault: net id out of range");
    lf.net = fault.net;
    return lf;
  }
  if (fault.site != FaultSite::kGateInput)
    throw std::invalid_argument("line fault: transistor fault");
  if (fault.gate < 0 || fault.gate >= ckt.gate_count())
    throw std::invalid_argument("line fault: gate id out of range");
  if (fault.pin < 0 || fault.pin >= ckt.gate(fault.gate).input_count())
    throw std::invalid_argument("line fault: pin out of range");
  lf.gate = fault.gate;
  lf.pin = fault.pin;
  return lf;
}

void FaultSimulator::packed_line_fault(
    const std::vector<std::uint64_t>& pi_words, const Fault& fault,
    std::vector<std::uint64_t>& values) const {
  const logic::CompiledCircuit& cc = sim_.compiled();
  cc.init_packed(pi_words, values);
  cc.eval_packed_line(values, checked_line_fault(ckt_, fault));
}

FaultSimReport FaultSimulator::run(const std::vector<Fault>& faults,
                                   const std::vector<Pattern>& patterns,
                                   const FaultSimOptions& options) const {
  const EvalContext ctx(ckt_, patterns);
  return run(ctx, faults, options);
}

FaultSimReport FaultSimulator::run(const EvalContext& ctx,
                                   const std::vector<Fault>& faults,
                                   const FaultSimOptions& options) const {
  FaultSimReport report;
  report.options = options;
  report.records = run_range(ctx, faults, 0, faults.size(), options);
  return report;
}

std::vector<DetectionRecord> FaultSimulator::run_range(
    const std::vector<Fault>& faults, std::size_t begin, std::size_t end,
    const std::vector<Pattern>& patterns,
    const FaultSimOptions& options) const {
  const EvalContext ctx(ckt_, patterns);
  return run_range(ctx, faults, begin, end, options);
}

std::vector<DetectionRecord> FaultSimulator::run_range(
    const EvalContext& ctx, const std::vector<Fault>& faults,
    std::size_t begin, std::size_t end, const FaultSimOptions& options) const {
  check_context(ctx);
  if (begin > end || end > faults.size())
    throw std::invalid_argument("run_range: bad fault range");
  std::vector<DetectionRecord> records(end - begin);

  bool any_line_fault = false;
  for (std::size_t fi = begin; fi < end && !any_line_fault; ++fi)
    any_line_fault = faults[fi].site != FaultSite::kGateTransistor;
  if (any_line_fault && !ctx.packed() && ctx.pattern_count() > 0)
    throw std::invalid_argument(
        "run_range: line faults need fully-specified (packable) patterns");

  // --- Line faults: 64-pattern-parallel batches against the context's
  // precomputed good-machine words (simulated once per pattern set, not
  // once per shard or per fault).  One scratch buffer serves every fault
  // and batch of this call. ------------------------------------------------
  std::vector<std::uint64_t> scratch;
  for (std::size_t bi = 0; any_line_fault && bi < ctx.batches().size(); ++bi) {
    const EvalContext::Batch& batch = ctx.batches()[bi];
    for (std::size_t fi = begin; fi < end; ++fi) {
      const Fault& f = faults[fi];
      if (f.site == FaultSite::kGateTransistor) continue;
      DetectionRecord& rec = records[fi - begin];
      if (rec.detected_output) continue;  // fault dropping
      packed_line_fault(batch.pi_words, f, scratch);
      std::uint64_t diff = 0;
      for (const logic::NetId po : ckt_.primary_outputs())
        diff |= (batch.net_words[static_cast<std::size_t>(po)] ^
                 scratch[static_cast<std::size_t>(po)]);
      diff &= batch.active;
      if (diff != 0) {
        rec.detected_output = true;
        rec.first_pattern =
            static_cast<int>(batch.base) + __builtin_ctzll(diff);
      }
    }
  }

  // --- Transistor faults: packed table-driven batches when the dictionary
  // allows it, retained-state serial simulation otherwise. -----------------
  for (std::size_t fi = begin; fi < end; ++fi) {
    const Fault& f = faults[fi];
    if (f.site != FaultSite::kGateTransistor) continue;
    records[fi - begin] = simulate_transistor_fault(ctx, f, options);
  }
  return records;
}

bool FaultSimulator::line_fault_detected(const Fault& fault,
                                         const Pattern& pattern) const {
  if (fault.site == FaultSite::kGateTransistor)
    throw std::invalid_argument("line_fault_detected: transistor fault");
  const logic::CompiledCircuit& cc = sim_.compiled();
  const auto pi_words = logic::pack_patterns(ckt_, {pattern});
  std::vector<std::uint64_t> good;
  cc.init_packed(pi_words, good);
  cc.eval_packed(good);
  std::vector<std::uint64_t> faulty;
  packed_line_fault(pi_words, fault, faulty);
  for (const logic::NetId po : ckt_.primary_outputs())
    if (((good[static_cast<std::size_t>(po)] ^
          faulty[static_cast<std::size_t>(po)]) &
         1ull) != 0)
      return true;
  return false;
}

bool FaultSimulator::line_fault_detected(const EvalContext& ctx,
                                         const Fault& fault,
                                         std::size_t pattern_index) const {
  check_context(ctx);
  if (fault.site == FaultSite::kGateTransistor)
    throw std::invalid_argument("line_fault_detected: transistor fault");
  if (pattern_index >= ctx.pattern_count())
    throw std::invalid_argument("line_fault_detected: bad pattern index");
  if (!ctx.packed())
    return line_fault_detected(fault, ctx.patterns()[pattern_index]);
  const EvalContext::Batch& batch = ctx.batches()[pattern_index / 64];
  const std::uint64_t bit = 1ull << (pattern_index % 64);
  std::vector<std::uint64_t> faulty;
  packed_line_fault(batch.pi_words, fault, faulty);
  for (const logic::NetId po : ckt_.primary_outputs())
    if (((batch.net_words[static_cast<std::size_t>(po)] ^
          faulty[static_cast<std::size_t>(po)]) &
         bit) != 0)
      return true;
  return false;
}

DetectionRecord FaultSimulator::simulate_transistor_fault(
    const Fault& fault, const std::vector<Pattern>& patterns,
    const FaultSimOptions& options) const {
  if (fault.site != FaultSite::kGateTransistor)
    throw std::invalid_argument("simulate_transistor_fault: wrong site");
  const logic::GateFault gf{fault.gate, fault.cell_fault};
  const gates::FaultAnalysis& fa = gates::DictionaryCache::global().lookup(
      ckt_.gate(fault.gate).kind, fault.cell_fault);

  DetectionRecord rec;
  std::vector<LogicV> state;
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    const Pattern& p = patterns[pi];
    const logic::SimResult good = sim_.simulate(p);
    const logic::SimResult bad = sim_.simulate_faulty_with(
        p, gf, fa, options.sequential_patterns && !state.empty() ? &state
                                                                 : nullptr);
    if (options.sequential_patterns) state = bad.net_values;

    bool hit = false;
    if (bad.iddq_flag && options.observe_iddq) {
      rec.detected_iddq = true;
      hit = true;
    }
    for (const logic::NetId po : ckt_.primary_outputs()) {
      const LogicV g = good.value(po);
      const LogicV b = bad.value(po);
      if (is_binary(g) && is_binary(b) && g != b) {
        rec.detected_output = true;
        hit = true;
      } else if (is_binary(g) && !is_binary(b)) {
        rec.potential = true;
      }
    }
    if (hit && rec.first_pattern < 0)
      rec.first_pattern = static_cast<int>(pi);
  }
  return rec;
}

DetectionRecord FaultSimulator::simulate_transistor_fault(
    const EvalContext& ctx, const Fault& fault,
    const FaultSimOptions& options) const {
  check_context(ctx);
  if (fault.site != FaultSite::kGateTransistor)
    throw std::invalid_argument("simulate_transistor_fault: wrong site");
  if (fault.gate < 0 || fault.gate >= ckt_.gate_count())
    throw std::invalid_argument("simulate_faulty: bad gate id");
  const gates::FaultAnalysis& fa =
      ctx.dictionary(ckt_.gate(fault.gate).kind, fault.cell_fault);

  // Purely binary dictionaries (no floating rows to retain, no X rows to
  // propagate) behave as a combinational table substitution: 64 patterns
  // per pass.  Floating/marginal faults keep the retained-state serial
  // path that two-pattern stuck-open detection relies on.
  if (options.batch_transistor_faults && ctx.packed() && fa.compiled_binary)
    return simulate_transistor_packed(ctx, fault, fa, options);
  return simulate_transistor_serial(ctx, fault, fa, options);
}

DetectionRecord FaultSimulator::simulate_transistor_serial(
    const EvalContext& ctx, const Fault& fault,
    const gates::FaultAnalysis& fa, const FaultSimOptions& options) const {
  const logic::GateFault gf{fault.gate, fault.cell_fault};
  DetectionRecord rec;
  std::vector<LogicV> state;
  for (std::size_t pi = 0; pi < ctx.pattern_count(); ++pi) {
    const Pattern& p = ctx.patterns()[pi];
    const logic::SimResult& good = ctx.good(pi);
    const logic::SimResult bad = sim_.simulate_faulty_with(
        p, gf, fa, options.sequential_patterns && !state.empty() ? &state
                                                                 : nullptr);
    if (options.sequential_patterns) state = bad.net_values;

    bool hit = false;
    if (bad.iddq_flag && options.observe_iddq) {
      rec.detected_iddq = true;
      hit = true;
    }
    for (const logic::NetId po : ckt_.primary_outputs()) {
      const LogicV g = good.value(po);
      const LogicV b = bad.value(po);
      if (is_binary(g) && is_binary(b) && g != b) {
        rec.detected_output = true;
        hit = true;
      } else if (is_binary(g) && !is_binary(b)) {
        rec.potential = true;
      }
    }
    if (hit && rec.first_pattern < 0)
      rec.first_pattern = static_cast<int>(pi);
  }
  return rec;
}

DetectionRecord FaultSimulator::simulate_transistor_packed(
    const EvalContext& ctx, const Fault& fault,
    const gates::FaultAnalysis& fa, const FaultSimOptions& options) const {
  DetectionRecord rec;
  const logic::CompiledCircuit& cc = sim_.compiled();
  std::vector<std::uint64_t> values;

  for (const EvalContext::Batch& batch : ctx.batches()) {
    // Faulty machine: every gate evaluates normally except the faulted
    // one, whose output word comes from its compiled faulty table.
    cc.init_packed(batch.pi_words, values);
    std::uint64_t contention = cc.eval_packed_faulty(values, fault.gate, fa);

    std::uint64_t diff = 0;
    for (const logic::NetId po : ckt_.primary_outputs())
      diff |= (batch.net_words[static_cast<std::size_t>(po)] ^
               values[static_cast<std::size_t>(po)]);
    diff &= batch.active;
    contention &= batch.active;

    if (diff != 0) rec.detected_output = true;
    const std::uint64_t iddq = options.observe_iddq ? contention : 0;
    if (iddq != 0) rec.detected_iddq = true;
    const std::uint64_t hit = diff | iddq;
    if (hit != 0 && rec.first_pattern < 0)
      rec.first_pattern =
          static_cast<int>(batch.base) + __builtin_ctzll(hit);
  }
  return rec;
}

bool FaultSimulator::stuck_open_detected(const Fault& fault,
                                         const Pattern& init,
                                         const Pattern& test) const {
  return simulate_transistor_fault(fault, {init, test}, {})
      .detected_output;
}

}  // namespace cpsinw::faults
