#include "faults/fault_sim.hpp"

#include <stdexcept>

#include "gates/fault_dictionary.hpp"

namespace cpsinw::faults {

using logic::LogicV;
using logic::Pattern;

int FaultSimReport::detected_count() const {
  int n = 0;
  for (const DetectionRecord& r : records)
    if (r.detected(options.observe_iddq)) ++n;
  return n;
}

double FaultSimReport::coverage() const {
  if (records.empty()) return 1.0;
  return static_cast<double>(detected_count()) /
         static_cast<double>(records.size());
}

FaultSimulator::FaultSimulator(const logic::Circuit& ckt)
    : ckt_(ckt), sim_(ckt) {}

std::vector<std::uint64_t> FaultSimulator::simulate_packed_with_line_fault(
    const std::vector<std::uint64_t>& pi_words, const Fault& fault) const {
  std::vector<std::uint64_t> values(
      static_cast<std::size_t>(ckt_.net_count()), 0);
  for (logic::NetId n = 0; n < ckt_.net_count(); ++n)
    if (ckt_.constant_of(n) == LogicV::k1)
      values[static_cast<std::size_t>(n)] = ~0ull;
  for (std::size_t i = 0; i < pi_words.size(); ++i)
    values[static_cast<std::size_t>(ckt_.primary_inputs()[i])] = pi_words[i];

  const std::uint64_t forced = fault.stuck_at_one ? ~0ull : 0ull;
  if (fault.site == FaultSite::kNet)
    values[static_cast<std::size_t>(fault.net)] = forced;

  for (const int gid : ckt_.topo_order()) {
    const logic::GateInst& g = ckt_.gate(gid);
    std::uint64_t in[3] = {0, 0, 0};
    for (int i = 0; i < g.input_count(); ++i) {
      in[i] = values[static_cast<std::size_t>(g.in[static_cast<std::size_t>(i)])];
      if (fault.site == FaultSite::kGateInput && fault.gate == gid &&
          fault.pin == i)
        in[i] = forced;
    }
    std::uint64_t out = logic::eval_cell_packed(g.kind, in[0], in[1], in[2]);
    if (fault.site == FaultSite::kNet && g.out == fault.net) out = forced;
    values[static_cast<std::size_t>(g.out)] = out;
  }
  return values;
}

FaultSimReport FaultSimulator::run(const std::vector<Fault>& faults,
                                   const std::vector<Pattern>& patterns,
                                   const FaultSimOptions& options) const {
  FaultSimReport report;
  report.options = options;
  report.records = run_range(faults, 0, faults.size(), patterns, options);
  return report;
}

std::vector<DetectionRecord> FaultSimulator::run_range(
    const std::vector<Fault>& faults, std::size_t begin, std::size_t end,
    const std::vector<Pattern>& patterns,
    const FaultSimOptions& options) const {
  if (begin > end || end > faults.size())
    throw std::invalid_argument("run_range: bad fault range");
  std::vector<DetectionRecord> records(end - begin);

  bool any_line_fault = false;
  for (std::size_t fi = begin; fi < end && !any_line_fault; ++fi)
    any_line_fault = faults[fi].site != FaultSite::kGateTransistor;

  // --- Line faults: 64-pattern-parallel batches.  The good-machine packed
  // simulation is only worth paying for when the range has line faults —
  // transistor-only shards skip it entirely. --------------------------------
  for (std::size_t base = 0; any_line_fault && base < patterns.size();
       base += 64) {
    const std::size_t count = std::min<std::size_t>(64, patterns.size() - base);
    const std::vector<Pattern> batch(patterns.begin() + static_cast<long>(base),
                                     patterns.begin() +
                                         static_cast<long>(base + count));
    const auto pi_words = logic::pack_patterns(ckt_, batch);
    const auto good = logic::simulate_packed(ckt_, pi_words);
    const std::uint64_t active =
        count == 64 ? ~0ull : ((1ull << count) - 1ull);

    for (std::size_t fi = begin; fi < end; ++fi) {
      const Fault& f = faults[fi];
      if (f.site == FaultSite::kGateTransistor) continue;
      DetectionRecord& rec = records[fi - begin];
      if (rec.detected_output) continue;  // fault dropping
      const auto faulty = simulate_packed_with_line_fault(pi_words, f);
      std::uint64_t diff = 0;
      for (const logic::NetId po : ckt_.primary_outputs())
        diff |= (good[static_cast<std::size_t>(po)] ^
                 faulty[static_cast<std::size_t>(po)]);
      diff &= active;
      if (diff != 0) {
        rec.detected_output = true;
        rec.first_pattern =
            static_cast<int>(base) + __builtin_ctzll(diff);
      }
    }
  }

  // --- Transistor faults: serial dictionary-based simulation. ------------
  for (std::size_t fi = begin; fi < end; ++fi) {
    const Fault& f = faults[fi];
    if (f.site != FaultSite::kGateTransistor) continue;
    records[fi - begin] = simulate_transistor_fault(f, patterns, options);
  }
  return records;
}

bool FaultSimulator::line_fault_detected(const Fault& fault,
                                         const Pattern& pattern) const {
  if (fault.site == FaultSite::kGateTransistor)
    throw std::invalid_argument("line_fault_detected: transistor fault");
  const auto pi_words = logic::pack_patterns(ckt_, {pattern});
  const auto good = logic::simulate_packed(ckt_, pi_words);
  const auto faulty = simulate_packed_with_line_fault(pi_words, fault);
  for (const logic::NetId po : ckt_.primary_outputs())
    if (((good[static_cast<std::size_t>(po)] ^
          faulty[static_cast<std::size_t>(po)]) &
         1ull) != 0)
      return true;
  return false;
}

DetectionRecord FaultSimulator::simulate_transistor_fault(
    const Fault& fault, const std::vector<Pattern>& patterns,
    const FaultSimOptions& options) const {
  if (fault.site != FaultSite::kGateTransistor)
    throw std::invalid_argument("simulate_transistor_fault: wrong site");
  const logic::GateFault gf{fault.gate, fault.cell_fault};
  const gates::FaultAnalysis fa =
      gates::analyze_fault(ckt_.gate(fault.gate).kind, fault.cell_fault);

  DetectionRecord rec;
  std::vector<LogicV> state;
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    const Pattern& p = patterns[pi];
    const logic::SimResult good = sim_.simulate(p);
    const logic::SimResult bad = sim_.simulate_faulty_with(
        p, gf, fa, options.sequential_patterns && !state.empty() ? &state
                                                                 : nullptr);
    if (options.sequential_patterns) state = bad.net_values;

    bool hit = false;
    if (bad.iddq_flag && options.observe_iddq) {
      rec.detected_iddq = true;
      hit = true;
    }
    for (const logic::NetId po : ckt_.primary_outputs()) {
      const LogicV g = good.value(po);
      const LogicV b = bad.value(po);
      if (is_binary(g) && is_binary(b) && g != b) {
        rec.detected_output = true;
        hit = true;
      } else if (is_binary(g) && !is_binary(b)) {
        rec.potential = true;
      }
    }
    if (hit && rec.first_pattern < 0)
      rec.first_pattern = static_cast<int>(pi);
  }
  return rec;
}

bool FaultSimulator::stuck_open_detected(const Fault& fault,
                                         const Pattern& init,
                                         const Pattern& test) const {
  return simulate_transistor_fault(fault, {init, test}, {})
      .detected_output;
}

}  // namespace cpsinw::faults
