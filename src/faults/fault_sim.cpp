#include "faults/fault_sim.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "gates/dictionary_cache.hpp"

namespace cpsinw::faults {

using logic::LogicV;
using logic::Pattern;

bool work_reduction_default() {
  static const bool on = [] {
    const char* env = std::getenv("CPSINW_WORK_REDUCTION");
    return env == nullptr || std::strcmp(env, "off") != 0;
  }();
  return on;
}

int FaultSimReport::detected_count() const {
  int n = 0;
  for (const DetectionRecord& r : records)
    if (r.detected(options.observe_iddq)) ++n;
  return n;
}

double FaultSimReport::coverage() const {
  if (records.empty()) return 1.0;
  return static_cast<double>(detected_count()) /
         static_cast<double>(records.size());
}

FaultSimulator::FaultSimulator(const logic::Circuit& ckt)
    : ckt_(ckt), sim_(ckt) {}

void FaultSimulator::check_context(const EvalContext& ctx) const {
  if (&ctx.circuit() != &ckt_)
    throw std::invalid_argument(
        "FaultSimulator: context built for a different circuit");
}

logic::CompiledCircuit::LineFault checked_line_fault(
    const logic::Circuit& ckt, const Fault& fault) {
  logic::CompiledCircuit::LineFault lf;
  lf.stuck_one = fault.stuck_at_one;
  if (fault.site == FaultSite::kNet) {
    if (fault.net < 0 || fault.net >= ckt.net_count())
      throw std::invalid_argument("line fault: net id out of range");
    lf.net = fault.net;
    return lf;
  }
  if (fault.site != FaultSite::kGateInput)
    throw std::invalid_argument("line fault: transistor fault");
  if (fault.gate < 0 || fault.gate >= ckt.gate_count())
    throw std::invalid_argument("line fault: gate id out of range");
  if (fault.pin < 0 || fault.pin >= ckt.gate(fault.gate).input_count())
    throw std::invalid_argument("line fault: pin out of range");
  lf.gate = fault.gate;
  lf.pin = fault.pin;
  return lf;
}

void FaultSimulator::packed_line_fault(
    const std::vector<std::uint64_t>& pi_words, const Fault& fault,
    std::vector<std::uint64_t>& values) const {
  const logic::CompiledCircuit& cc = sim_.compiled();
  cc.init_packed(pi_words, values);
  cc.eval_packed_line(values, checked_line_fault(ckt_, fault));
}

FaultSimReport FaultSimulator::run(const std::vector<Fault>& faults,
                                   const std::vector<Pattern>& patterns,
                                   const FaultSimOptions& options) const {
  const EvalContext ctx(ckt_, patterns);
  return run(ctx, faults, options);
}

FaultSimReport FaultSimulator::run(const EvalContext& ctx,
                                   const std::vector<Fault>& faults,
                                   const FaultSimOptions& options) const {
  FaultSimReport report;
  report.options = options;
  report.records = run_range(ctx, faults, 0, faults.size(), options);
  return report;
}

std::vector<DetectionRecord> FaultSimulator::run_range(
    const std::vector<Fault>& faults, std::size_t begin, std::size_t end,
    const std::vector<Pattern>& patterns,
    const FaultSimOptions& options) const {
  const EvalContext ctx(ckt_, patterns);
  return run_range(ctx, faults, begin, end, options);
}

std::vector<DetectionRecord> FaultSimulator::run_range(
    const EvalContext& ctx, const std::vector<Fault>& faults,
    std::size_t begin, std::size_t end, const FaultSimOptions& options,
    LineBatchStats* stats) const {
  check_context(ctx);
  if (begin > end || end > faults.size())
    throw std::invalid_argument("run_range: bad fault range");
  std::vector<DetectionRecord> records(end - begin);

  bool any_line_fault = false;
  for (std::size_t fi = begin; fi < end && !any_line_fault; ++fi)
    any_line_fault = faults[fi].site != FaultSite::kGateTransistor;
  if (any_line_fault && !ctx.packed() && ctx.pattern_count() > 0)
    throw std::invalid_argument(
        "run_range: line faults need fully-specified (packable) patterns");

  if (any_line_fault && options.batch_line_faults && ctx.word_count() > 0) {
    // --- Line faults, batched: groups of kBatchLanes faults share one
    // forward walk per pattern word over the context's SoA good planes.
    // Sorting by injection position groups faults whose shared (skipped)
    // prefix is longest; each fault's record still derives from its own
    // detection words, so grouping never changes results — concatenating
    // shard ranges stays bit-identical to one whole-list run. --------------
    run_line_faults_batched(ctx, faults, begin, end, options, records, stats);
  } else if (any_line_fault) {
    // --- Line faults, single-fault path (batching disabled): one packed
    // pass per fault per 64-pattern batch with fault dropping — the PR-5
    // kernel shape, kept as the equivalence/bench baseline.  One scratch
    // buffer serves every fault and batch of this call. --------------------
    std::vector<std::uint64_t> scratch;
    for (std::size_t bi = 0; bi < ctx.batches().size(); ++bi) {
      const EvalContext::Batch& batch = ctx.batches()[bi];
      for (std::size_t fi = begin; fi < end; ++fi) {
        const Fault& f = faults[fi];
        if (f.site == FaultSite::kGateTransistor) continue;
        DetectionRecord& rec = records[fi - begin];
        if (rec.detected_output) continue;  // fault dropping
        packed_line_fault(batch.pi_words, f, scratch);
        std::uint64_t diff = 0;
        for (const logic::NetId po : ckt_.primary_outputs())
          diff |= (ctx.good_plane(po)[bi] ^
                   scratch[static_cast<std::size_t>(po)]);
        diff &= batch.active;
        if (diff != 0) {
          rec.detected_output = true;
          rec.first_pattern =
              static_cast<int>(batch.base) + __builtin_ctzll(diff);
        }
      }
    }
  }

  // --- Transistor faults: packed table-driven batches when the dictionary
  // allows it, retained-state serial simulation otherwise.  One scratch set
  // serves the whole range (the plane kernel's epoch bookkeeping persists
  // across faults, so reuse also skips its per-call re-zeroing). -----------
  TransistorScratch scratch;
  for (std::size_t fi = begin; fi < end; ++fi) {
    const Fault& f = faults[fi];
    if (f.site != FaultSite::kGateTransistor) continue;
    records[fi - begin] = simulate_transistor_scratch(ctx, f, options, scratch);
  }
  return records;
}

void FaultSimulator::run_line_faults_batched(
    const EvalContext& ctx, const std::vector<Fault>& faults,
    std::size_t begin, std::size_t end, const FaultSimOptions& options,
    std::vector<DetectionRecord>& records, LineBatchStats* stats) const {
  using logic::CompiledCircuit;
  const CompiledCircuit& cc = sim_.compiled();

  // Gather + validate, then sort by injection position: the kernel skips
  // every gate before its group's earliest event, so co-locating faults
  // with deep injection points maximizes the shared skipped prefix.
  struct Entry {
    std::size_t rec;  ///< index into `records`
    CompiledCircuit::LineFault lf;
    std::size_t pos;  ///< earliest position the fault can diverge at
  };
  std::vector<Entry> entries;
  entries.reserve(end - begin);
  for (std::size_t fi = begin; fi < end; ++fi) {
    const Fault& f = faults[fi];
    if (f.site == FaultSite::kGateTransistor) continue;
    Entry e;
    e.rec = fi - begin;
    e.lf = checked_line_fault(ckt_, f);
    if (e.lf.net >= 0) {
      const int driver = ckt_.driver_of(e.lf.net);
      e.pos = driver < 0 ? 0 : cc.position_of(driver);
    } else {
      e.pos = cc.position_of(e.lf.gate);
    }
    entries.push_back(e);
  }

  // --- Critical-path tracing: on a single-output fan-out-free cone the
  // detection word of SA-v on net L is crit(L) & (good(L) != v) & active —
  // exact there (no reconvergent path can mask a sensitized line), so the
  // whole range resolves from the good machine with no faulty pass.  A
  // branch fault reads its input net's planes: fanout <= 1 makes branch
  // and stem the same line. ------------------------------------------------
  if (options.critical_path_tracing && ctx.cpt_available()) {
    const std::uint64_t* const active = ctx.active_words().data();
    const std::size_t nw = ctx.word_count();
    for (const Entry& e : entries) {
      const logic::NetId net =
          e.lf.net >= 0
              ? e.lf.net
              : ckt_.gate(e.lf.gate).in[static_cast<std::size_t>(e.lf.pin)];
      const std::uint64_t* crit = ctx.crit_plane(net);
      const std::uint64_t* good = ctx.good_plane(net);
      DetectionRecord& rec = records[e.rec];
      for (std::size_t w = 0; w < nw; ++w) {
        const std::uint64_t det =
            crit[w] & (e.lf.stuck_one ? ~good[w] : good[w]) & active[w];
        if (det == 0) continue;
        rec.detected_output = true;
        rec.first_pattern =
            static_cast<int>(w * 64) + __builtin_ctzll(det);
        break;
      }
    }
    if (stats != nullptr) {
      LineBatchStats local;
      local.faults = entries.size();
      local.cpt_faults = entries.size();
      stats->merge(local);
    }
    return;
  }
  // Stable counting sort by position — positions are bounded by the gate
  // count, so two counting passes replace comparison sorting (which showed
  // up as the single largest fixed cost of this wrapper, ahead of the
  // kernel itself on shallow circuits).
  const std::size_t n_pos = cc.gates().size() + 1;
  std::vector<std::uint32_t> counts(n_pos + 1, 0);
  for (const Entry& e : entries) ++counts[e.pos + 1];
  for (std::size_t p = 1; p <= n_pos; ++p) counts[p] += counts[p - 1];
  std::vector<Entry> sorted(entries.size());
  for (const Entry& e : entries) sorted[counts[e.pos]++] = e;
  entries.swap(sorted);

  const std::size_t n_words = ctx.word_count();
  std::vector<std::uint64_t> lane_scratch;
  LineBatchStats local;
  local.faults = entries.size();

  if (!options.drop_detected) {
    // One full-width pass per group (the PR-7 shape, kept as the
    // equivalence/bench baseline when dropping is off).
    std::vector<std::uint64_t> det(CompiledCircuit::kBatchLanes * n_words);
    for (std::size_t g = 0; g < entries.size();
         g += CompiledCircuit::kBatchLanes) {
      const std::size_t n =
          std::min(CompiledCircuit::kBatchLanes, entries.size() - g);
      CompiledCircuit::LineFault lfs[CompiledCircuit::kBatchLanes];
      for (std::size_t j = 0; j < n; ++j) lfs[j] = entries[g + j].lf;
      const std::size_t words_done = cc.eval_packed_line_batch(
          ctx.good_planes(), ctx.plane_stride(), n_words,
          ctx.active_words().data(), lfs, n, det.data(), lane_scratch);
      for (std::size_t j = 0; j < n; ++j) {
        DetectionRecord& rec = records[entries[g + j].rec];
        const std::uint64_t* fd = det.data() + j * n_words;
        for (std::size_t w = 0; w < words_done; ++w) {
          if (fd[w] == 0) continue;
          rec.detected_output = true;
          rec.first_pattern =
              static_cast<int>(w * 64) + __builtin_ctzll(fd[w]);
          break;
        }
      }
      ++local.groups;
      local.lane_slots += n;
      local.words += words_done;
      ++local.fill[n - 1];
    }
    if (stats != nullptr) stats->merge(local);
    return;
  }

  // --- Fault dropping: walk the word range in strips and re-form the lane
  // groups from the *surviving* faults between strips, so a detected fault
  // stops consuming a lane for the rest of the walk (= mid-walk lane
  // refill from pending faults).  A fault's detection words depend only on
  // the fault, never on its group (the kernel early-exits a group only
  // once every lane detected), so any strip/group schedule yields the same
  // record — dropping is bit-identical to the single pass above.  The
  // first strip is narrow: most detectable faults die within a few words,
  // so the expensive full-width walks only ever see the hard tail.
  // Strips start on kSimdWords boundaries, which keeps the plane pointer
  // offsets aligned with the padded row stride. ----------------------------
  constexpr std::size_t kFirstStrip = CompiledCircuit::kSimdWords;
  constexpr std::size_t kWideStrip = 4 * CompiledCircuit::kSimdWords;
  std::vector<std::uint64_t> det(CompiledCircuit::kBatchLanes * kWideStrip);
  std::vector<std::uint32_t> live(entries.size());
  for (std::size_t i = 0; i < live.size(); ++i)
    live[i] = static_cast<std::uint32_t>(i);

  std::size_t w0 = 0;
  std::size_t strip = kFirstStrip;
  while (w0 < n_words && !live.empty()) {
    const std::size_t nw = std::min(strip, n_words - w0);
    strip = kWideStrip;
    std::size_t survivors = 0;
    for (std::size_t g = 0; g < live.size();
         g += CompiledCircuit::kBatchLanes) {
      const std::size_t n =
          std::min(CompiledCircuit::kBatchLanes, live.size() - g);
      CompiledCircuit::LineFault lfs[CompiledCircuit::kBatchLanes];
      for (std::size_t j = 0; j < n; ++j) lfs[j] = entries[live[g + j]].lf;
      const std::size_t words_done = cc.eval_packed_line_batch(
          ctx.good_planes() + w0, ctx.plane_stride(), nw,
          ctx.active_words().data() + w0, lfs, n, det.data(), lane_scratch);
      for (std::size_t j = 0; j < n; ++j) {
        DetectionRecord& rec = records[entries[live[g + j]].rec];
        const std::uint64_t* fd = det.data() + j * nw;
        bool hit = false;
        for (std::size_t w = 0; w < words_done; ++w) {
          if (fd[w] == 0) continue;
          rec.detected_output = true;
          rec.first_pattern =
              static_cast<int>((w0 + w) * 64) + __builtin_ctzll(fd[w]);
          hit = true;
          break;
        }
        // Order-preserving compaction: survivors keep their position-
        // sorted order, so regrouped lanes stay co-located by depth.
        if (!hit) live[survivors++] = live[g + j];
      }
      ++local.groups;
      local.lane_slots += n;
      local.words += words_done;
      ++local.fill[n - 1];
    }
    live.resize(survivors);
    w0 += nw;
  }
  if (stats != nullptr) stats->merge(local);
}

bool FaultSimulator::line_fault_detected(const Fault& fault,
                                         const Pattern& pattern) const {
  if (fault.site == FaultSite::kGateTransistor)
    throw std::invalid_argument("line_fault_detected: transistor fault");
  const logic::CompiledCircuit& cc = sim_.compiled();
  const auto pi_words = logic::pack_patterns(ckt_, {pattern});
  std::vector<std::uint64_t> good;
  cc.init_packed(pi_words, good);
  cc.eval_packed(good);
  std::vector<std::uint64_t> faulty;
  packed_line_fault(pi_words, fault, faulty);
  for (const logic::NetId po : ckt_.primary_outputs())
    if (((good[static_cast<std::size_t>(po)] ^
          faulty[static_cast<std::size_t>(po)]) &
         1ull) != 0)
      return true;
  return false;
}

bool FaultSimulator::line_fault_detected(const EvalContext& ctx,
                                         const Fault& fault,
                                         std::size_t pattern_index) const {
  check_context(ctx);
  if (fault.site == FaultSite::kGateTransistor)
    throw std::invalid_argument("line_fault_detected: transistor fault");
  if (pattern_index >= ctx.pattern_count())
    throw std::invalid_argument("line_fault_detected: bad pattern index");
  if (!ctx.packed())
    return line_fault_detected(fault, ctx.patterns()[pattern_index]);
  const std::size_t w = pattern_index / 64;
  const EvalContext::Batch& batch = ctx.batches()[w];
  const std::uint64_t bit = 1ull << (pattern_index % 64);
  std::vector<std::uint64_t> faulty;
  packed_line_fault(batch.pi_words, fault, faulty);
  for (const logic::NetId po : ckt_.primary_outputs())
    if (((ctx.good_plane(po)[w] ^ faulty[static_cast<std::size_t>(po)]) &
         bit) != 0)
      return true;
  return false;
}

DetectionRecord FaultSimulator::simulate_transistor_fault(
    const Fault& fault, const std::vector<Pattern>& patterns,
    const FaultSimOptions& options) const {
  if (fault.site != FaultSite::kGateTransistor)
    throw std::invalid_argument("simulate_transistor_fault: wrong site");
  const logic::GateFault gf{fault.gate, fault.cell_fault};
  const gates::FaultAnalysis& fa = gates::DictionaryCache::global().lookup(
      ckt_.gate(fault.gate).kind, fault.cell_fault);

  DetectionRecord rec;
  std::vector<LogicV> state;
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    const Pattern& p = patterns[pi];
    const logic::SimResult good = sim_.simulate(p);
    const logic::SimResult bad = sim_.simulate_faulty_with(
        p, gf, fa, options.sequential_patterns && !state.empty() ? &state
                                                                 : nullptr);
    if (options.sequential_patterns) state = bad.net_values;

    bool hit = false;
    if (bad.iddq_flag && options.observe_iddq) {
      rec.detected_iddq = true;
      hit = true;
    }
    for (const logic::NetId po : ckt_.primary_outputs()) {
      const LogicV g = good.value(po);
      const LogicV b = bad.value(po);
      if (is_binary(g) && is_binary(b) && g != b) {
        rec.detected_output = true;
        hit = true;
      } else if (is_binary(g) && !is_binary(b)) {
        rec.potential = true;
      }
    }
    if (hit && rec.first_pattern < 0)
      rec.first_pattern = static_cast<int>(pi);
    if (rec.first_pattern >= 0 &&
        options.detection_mode == DetectionMode::kFirstOnly)
      break;
  }
  return rec;
}

DetectionRecord FaultSimulator::simulate_transistor_fault(
    const EvalContext& ctx, const Fault& fault,
    const FaultSimOptions& options) const {
  TransistorScratch scratch;
  return simulate_transistor_scratch(ctx, fault, options, scratch);
}

DetectionRecord FaultSimulator::simulate_transistor_scratch(
    const EvalContext& ctx, const Fault& fault,
    const FaultSimOptions& options, TransistorScratch& scratch) const {
  check_context(ctx);
  if (fault.site != FaultSite::kGateTransistor)
    throw std::invalid_argument("simulate_transistor_fault: wrong site");
  if (fault.gate < 0 || fault.gate >= ckt_.gate_count())
    throw std::invalid_argument("simulate_faulty: bad gate id");
  const gates::CellKind kind = ckt_.gate(fault.gate).kind;
  const gates::CellFault& cf = fault.cell_fault;
  // Memoized dictionary lookup: index by (kind, fault kind, transistor),
  // falling back to the locked cache for out-of-band transistor indices.
  const gates::FaultAnalysis* fap = nullptr;
  constexpr std::size_t kTSlots = 33;  // transistor -1..31
  const std::size_t tslot = static_cast<std::size_t>(cf.transistor + 1);
  if (cf.transistor + 1 >= 0 && tslot < kTSlots) {
    const std::size_t idx = (static_cast<std::size_t>(kind) * 5 +
                             static_cast<std::size_t>(cf.kind)) *
                                kTSlots +
                            tslot;
    if (scratch.dicts.size() <= idx) scratch.dicts.resize(idx + 1, nullptr);
    const gates::FaultAnalysis*& slot = scratch.dicts[idx];
    if (slot == nullptr) slot = &ctx.dictionary(kind, cf);
    fap = slot;
  } else {
    fap = &ctx.dictionary(kind, cf);
  }
  const gates::FaultAnalysis& fa = *fap;

  // Purely binary dictionaries (no floating rows to retain, no X rows to
  // propagate) behave as a combinational table substitution: 64 patterns
  // per pass.  Floating/marginal faults keep the retained-state serial
  // path that two-pattern stuck-open detection relies on.
  if (options.batch_transistor_faults && ctx.packed() && fa.compiled_binary)
    return simulate_transistor_packed(ctx, fault, fa, options, scratch);
  return simulate_transistor_serial(ctx, fault, fa, options);
}

DetectionRecord FaultSimulator::simulate_transistor_serial(
    const EvalContext& ctx, const Fault& fault,
    const gates::FaultAnalysis& fa, const FaultSimOptions& options) const {
  const logic::GateFault gf{fault.gate, fault.cell_fault};
  DetectionRecord rec;
  std::vector<LogicV> state;
  for (std::size_t pi = 0; pi < ctx.pattern_count(); ++pi) {
    const Pattern& p = ctx.patterns()[pi];
    const logic::SimResult& good = ctx.good(pi);
    const logic::SimResult bad = sim_.simulate_faulty_with(
        p, gf, fa, options.sequential_patterns && !state.empty() ? &state
                                                                 : nullptr);
    if (options.sequential_patterns) state = bad.net_values;

    bool hit = false;
    if (bad.iddq_flag && options.observe_iddq) {
      rec.detected_iddq = true;
      hit = true;
    }
    for (const logic::NetId po : ckt_.primary_outputs()) {
      const LogicV g = good.value(po);
      const LogicV b = bad.value(po);
      if (is_binary(g) && is_binary(b) && g != b) {
        rec.detected_output = true;
        hit = true;
      } else if (is_binary(g) && !is_binary(b)) {
        rec.potential = true;
      }
    }
    if (hit && rec.first_pattern < 0)
      rec.first_pattern = static_cast<int>(pi);
    if (rec.first_pattern >= 0 &&
        options.detection_mode == DetectionMode::kFirstOnly)
      break;
  }
  return rec;
}

DetectionRecord FaultSimulator::simulate_transistor_packed(
    const EvalContext& ctx, const Fault& fault,
    const gates::FaultAnalysis& fa, const FaultSimOptions& options,
    TransistorScratch& scratch) const {
  // Faulty machine: every gate evaluates normally except the faulted one,
  // whose output words come from its compiled faulty table — pattern words
  // share the context's good planes.
  DetectionRecord rec;
  const bool first_only = options.detection_mode == DetectionMode::kFirstOnly;
  // A binary dictionary can only produce a nonzero diff word when some row
  // is kWrongValue and a nonzero contention word when some row contends, so
  // for a fault with neither the empty record is exact without any pass.
  if (options.drop_detected && !fa.output_detectable &&
      (!options.observe_iddq || !fa.iddq_detectable))
    return rec;
  const logic::CompiledCircuit& cc = sim_.compiled();
  const std::size_t n_words = ctx.word_count();
  std::vector<std::uint64_t>& diff = scratch.diff;
  std::vector<std::uint64_t>& contention = scratch.contention;
  const std::uint64_t* const active = ctx.active_words().data();

  if (!options.drop_detected && !first_only) {
    // Full pass, no early exit: an IDDQ-only excitation in a late word must
    // be observed.  Branch-free OR-accumulation first (the compiler
    // vectorizes this flat loop; a branchy word-at-a-time scan was a
    // measurable slice of the per-fault cost once the kernel itself was
    // batched), then an early-exiting second pass for the first detecting
    // pattern only when something actually hit.
    diff.resize(n_words);
    contention.resize(n_words);
    cc.eval_packed_faulty_planes(ctx.good_planes(), ctx.plane_stride(),
                                 n_words, fault.gate, fa, diff.data(),
                                 contention.data(), scratch.lanes);
    std::uint64_t any_d = 0;
    std::uint64_t any_c = 0;
    for (std::size_t w = 0; w < n_words; ++w) {
      any_d |= diff[w] & active[w];
      any_c |= contention[w] & active[w];
    }
    rec.detected_output = any_d != 0;
    rec.detected_iddq = options.observe_iddq && any_c != 0;
    if (any_d != 0 || rec.detected_iddq) {
      for (std::size_t w = 0; w < n_words; ++w) {
        const std::uint64_t hit =
            (diff[w] | (options.observe_iddq ? contention[w] : 0)) & active[w];
        if (hit != 0) {
          rec.first_pattern = static_cast<int>(w * 64) + __builtin_ctzll(hit);
          break;
        }
      }
    }
    return rec;
  }

  // --- Strip-mined walk (dropping and/or first-only).  In full mode the
  // walk stops only once no later word can change the record — output side
  // resolved (diff seen, or no kWrongValue row exists) AND IDDQ side
  // resolved (contention seen, not observed, or no contending row) — so
  // the record is bit-identical to the full pass above.  In first-only
  // mode the walk stops at the word holding the first counted detection,
  // with that word's contributions masked to patterns at or before the
  // hit bit: exactly the prefix the serial path sees before its break. ----
  constexpr std::size_t kFirstStrip = logic::CompiledCircuit::kSimdWords;
  constexpr std::size_t kWideStrip = 4 * logic::CompiledCircuit::kSimdWords;
  diff.resize(kWideStrip);
  contention.resize(kWideStrip);
  std::uint64_t any_d = 0;
  std::uint64_t any_c = 0;
  std::size_t w0 = 0;
  std::size_t strip = kFirstStrip;
  while (w0 < n_words) {
    const std::size_t nw = std::min(strip, n_words - w0);
    strip = kWideStrip;
    cc.eval_packed_faulty_planes(ctx.good_planes() + w0, ctx.plane_stride(),
                                 nw, fault.gate, fa, diff.data(),
                                 contention.data(), scratch.lanes);
    for (std::size_t w = 0; w < nw; ++w) {
      const std::uint64_t d = diff[w] & active[w0 + w];
      const std::uint64_t c = contention[w] & active[w0 + w];
      const std::uint64_t hit = d | (options.observe_iddq ? c : 0);
      if (rec.first_pattern < 0 && hit != 0) {
        const int b = __builtin_ctzll(hit);
        rec.first_pattern = static_cast<int>((w0 + w) * 64) + b;
        if (first_only) {
          const std::uint64_t mask = b == 63 ? ~0ull : ((1ull << (b + 1)) - 1);
          any_d |= d & mask;
          any_c |= c & mask;
          break;
        }
      }
      any_d |= d;
      any_c |= c;
    }
    if (first_only && rec.first_pattern >= 0) break;
    w0 += nw;
    if (!first_only) {
      const bool out_final = any_d != 0 || !fa.output_detectable;
      const bool iddq_final =
          !options.observe_iddq || any_c != 0 || !fa.iddq_detectable;
      if (out_final && iddq_final) break;
    }
  }
  rec.detected_output = any_d != 0;
  rec.detected_iddq = options.observe_iddq && any_c != 0;
  return rec;
}

bool FaultSimulator::stuck_open_detected(const Fault& fault,
                                         const Pattern& init,
                                         const Pattern& test) const {
  return simulate_transistor_fault(fault, {init, test}, {})
      .detected_output;
}

}  // namespace cpsinw::faults
