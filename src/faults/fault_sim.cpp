#include "faults/fault_sim.hpp"

#include <stdexcept>

#include "gates/dictionary_cache.hpp"

namespace cpsinw::faults {

using logic::LogicV;
using logic::Pattern;

int FaultSimReport::detected_count() const {
  int n = 0;
  for (const DetectionRecord& r : records)
    if (r.detected(options.observe_iddq)) ++n;
  return n;
}

double FaultSimReport::coverage() const {
  if (records.empty()) return 1.0;
  return static_cast<double>(detected_count()) /
         static_cast<double>(records.size());
}

FaultSimulator::FaultSimulator(const logic::Circuit& ckt)
    : ckt_(ckt), sim_(ckt) {}

void FaultSimulator::check_context(const EvalContext& ctx) const {
  if (&ctx.circuit() != &ckt_)
    throw std::invalid_argument(
        "FaultSimulator: context built for a different circuit");
}

std::vector<std::uint64_t> FaultSimulator::simulate_packed_with_line_fault(
    const std::vector<std::uint64_t>& pi_words, const Fault& fault) const {
  std::vector<std::uint64_t> values(
      static_cast<std::size_t>(ckt_.net_count()), 0);
  for (logic::NetId n = 0; n < ckt_.net_count(); ++n)
    if (ckt_.constant_of(n) == LogicV::k1)
      values[static_cast<std::size_t>(n)] = ~0ull;
  for (std::size_t i = 0; i < pi_words.size(); ++i)
    values[static_cast<std::size_t>(ckt_.primary_inputs()[i])] = pi_words[i];

  const std::uint64_t forced = fault.stuck_at_one ? ~0ull : 0ull;
  if (fault.site == FaultSite::kNet)
    values[static_cast<std::size_t>(fault.net)] = forced;

  for (const int gid : ckt_.topo_order()) {
    const logic::GateInst& g = ckt_.gate(gid);
    std::uint64_t in[3] = {0, 0, 0};
    for (int i = 0; i < g.input_count(); ++i) {
      in[i] = values[static_cast<std::size_t>(g.in[static_cast<std::size_t>(i)])];
      if (fault.site == FaultSite::kGateInput && fault.gate == gid &&
          fault.pin == i)
        in[i] = forced;
    }
    std::uint64_t out = logic::eval_cell_packed(g.kind, in[0], in[1], in[2]);
    if (fault.site == FaultSite::kNet && g.out == fault.net) out = forced;
    values[static_cast<std::size_t>(g.out)] = out;
  }
  return values;
}

FaultSimReport FaultSimulator::run(const std::vector<Fault>& faults,
                                   const std::vector<Pattern>& patterns,
                                   const FaultSimOptions& options) const {
  const EvalContext ctx(ckt_, patterns);
  return run(ctx, faults, options);
}

FaultSimReport FaultSimulator::run(const EvalContext& ctx,
                                   const std::vector<Fault>& faults,
                                   const FaultSimOptions& options) const {
  FaultSimReport report;
  report.options = options;
  report.records = run_range(ctx, faults, 0, faults.size(), options);
  return report;
}

std::vector<DetectionRecord> FaultSimulator::run_range(
    const std::vector<Fault>& faults, std::size_t begin, std::size_t end,
    const std::vector<Pattern>& patterns,
    const FaultSimOptions& options) const {
  const EvalContext ctx(ckt_, patterns);
  return run_range(ctx, faults, begin, end, options);
}

std::vector<DetectionRecord> FaultSimulator::run_range(
    const EvalContext& ctx, const std::vector<Fault>& faults,
    std::size_t begin, std::size_t end, const FaultSimOptions& options) const {
  check_context(ctx);
  if (begin > end || end > faults.size())
    throw std::invalid_argument("run_range: bad fault range");
  std::vector<DetectionRecord> records(end - begin);

  bool any_line_fault = false;
  for (std::size_t fi = begin; fi < end && !any_line_fault; ++fi)
    any_line_fault = faults[fi].site != FaultSite::kGateTransistor;
  if (any_line_fault && !ctx.packed() && ctx.pattern_count() > 0)
    throw std::invalid_argument(
        "run_range: line faults need fully-specified (packable) patterns");

  // --- Line faults: 64-pattern-parallel batches against the context's
  // precomputed good-machine words (simulated once per pattern set, not
  // once per shard or per fault). ------------------------------------------
  for (std::size_t bi = 0; any_line_fault && bi < ctx.batches().size(); ++bi) {
    const EvalContext::Batch& batch = ctx.batches()[bi];
    for (std::size_t fi = begin; fi < end; ++fi) {
      const Fault& f = faults[fi];
      if (f.site == FaultSite::kGateTransistor) continue;
      DetectionRecord& rec = records[fi - begin];
      if (rec.detected_output) continue;  // fault dropping
      const auto faulty = simulate_packed_with_line_fault(batch.pi_words, f);
      std::uint64_t diff = 0;
      for (const logic::NetId po : ckt_.primary_outputs())
        diff |= (batch.net_words[static_cast<std::size_t>(po)] ^
                 faulty[static_cast<std::size_t>(po)]);
      diff &= batch.active;
      if (diff != 0) {
        rec.detected_output = true;
        rec.first_pattern =
            static_cast<int>(batch.base) + __builtin_ctzll(diff);
      }
    }
  }

  // --- Transistor faults: packed table-driven batches when the dictionary
  // allows it, retained-state serial simulation otherwise. -----------------
  for (std::size_t fi = begin; fi < end; ++fi) {
    const Fault& f = faults[fi];
    if (f.site != FaultSite::kGateTransistor) continue;
    records[fi - begin] = simulate_transistor_fault(ctx, f, options);
  }
  return records;
}

bool FaultSimulator::line_fault_detected(const Fault& fault,
                                         const Pattern& pattern) const {
  if (fault.site == FaultSite::kGateTransistor)
    throw std::invalid_argument("line_fault_detected: transistor fault");
  const auto pi_words = logic::pack_patterns(ckt_, {pattern});
  const auto good = logic::simulate_packed(ckt_, pi_words);
  const auto faulty = simulate_packed_with_line_fault(pi_words, fault);
  for (const logic::NetId po : ckt_.primary_outputs())
    if (((good[static_cast<std::size_t>(po)] ^
          faulty[static_cast<std::size_t>(po)]) &
         1ull) != 0)
      return true;
  return false;
}

bool FaultSimulator::line_fault_detected(const EvalContext& ctx,
                                         const Fault& fault,
                                         std::size_t pattern_index) const {
  check_context(ctx);
  if (fault.site == FaultSite::kGateTransistor)
    throw std::invalid_argument("line_fault_detected: transistor fault");
  if (pattern_index >= ctx.pattern_count())
    throw std::invalid_argument("line_fault_detected: bad pattern index");
  if (!ctx.packed())
    return line_fault_detected(fault, ctx.patterns()[pattern_index]);
  const EvalContext::Batch& batch = ctx.batches()[pattern_index / 64];
  const std::uint64_t bit = 1ull << (pattern_index % 64);
  const auto faulty = simulate_packed_with_line_fault(batch.pi_words, fault);
  for (const logic::NetId po : ckt_.primary_outputs())
    if (((batch.net_words[static_cast<std::size_t>(po)] ^
          faulty[static_cast<std::size_t>(po)]) &
         bit) != 0)
      return true;
  return false;
}

DetectionRecord FaultSimulator::simulate_transistor_fault(
    const Fault& fault, const std::vector<Pattern>& patterns,
    const FaultSimOptions& options) const {
  if (fault.site != FaultSite::kGateTransistor)
    throw std::invalid_argument("simulate_transistor_fault: wrong site");
  const logic::GateFault gf{fault.gate, fault.cell_fault};
  const gates::FaultAnalysis& fa = gates::DictionaryCache::global().lookup(
      ckt_.gate(fault.gate).kind, fault.cell_fault);

  DetectionRecord rec;
  std::vector<LogicV> state;
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    const Pattern& p = patterns[pi];
    const logic::SimResult good = sim_.simulate(p);
    const logic::SimResult bad = sim_.simulate_faulty_with(
        p, gf, fa, options.sequential_patterns && !state.empty() ? &state
                                                                 : nullptr);
    if (options.sequential_patterns) state = bad.net_values;

    bool hit = false;
    if (bad.iddq_flag && options.observe_iddq) {
      rec.detected_iddq = true;
      hit = true;
    }
    for (const logic::NetId po : ckt_.primary_outputs()) {
      const LogicV g = good.value(po);
      const LogicV b = bad.value(po);
      if (is_binary(g) && is_binary(b) && g != b) {
        rec.detected_output = true;
        hit = true;
      } else if (is_binary(g) && !is_binary(b)) {
        rec.potential = true;
      }
    }
    if (hit && rec.first_pattern < 0)
      rec.first_pattern = static_cast<int>(pi);
  }
  return rec;
}

DetectionRecord FaultSimulator::simulate_transistor_fault(
    const EvalContext& ctx, const Fault& fault,
    const FaultSimOptions& options) const {
  check_context(ctx);
  if (fault.site != FaultSite::kGateTransistor)
    throw std::invalid_argument("simulate_transistor_fault: wrong site");
  if (fault.gate < 0 || fault.gate >= ckt_.gate_count())
    throw std::invalid_argument("simulate_faulty: bad gate id");
  const gates::FaultAnalysis& fa =
      ctx.dictionary(ckt_.gate(fault.gate).kind, fault.cell_fault);

  // Purely binary dictionaries (no floating rows to retain, no X rows to
  // propagate) behave as a combinational table substitution: 64 patterns
  // per pass.  Floating/marginal faults keep the retained-state serial
  // path that two-pattern stuck-open detection relies on.
  if (options.batch_transistor_faults && ctx.packed() &&
      !fa.needs_sequence && !fa.marginal_detectable)
    return simulate_transistor_packed(ctx, fault, fa, options);
  return simulate_transistor_serial(ctx, fault, fa, options);
}

DetectionRecord FaultSimulator::simulate_transistor_serial(
    const EvalContext& ctx, const Fault& fault,
    const gates::FaultAnalysis& fa, const FaultSimOptions& options) const {
  const logic::GateFault gf{fault.gate, fault.cell_fault};
  DetectionRecord rec;
  std::vector<LogicV> state;
  for (std::size_t pi = 0; pi < ctx.pattern_count(); ++pi) {
    const Pattern& p = ctx.patterns()[pi];
    const logic::SimResult& good = ctx.good(pi);
    const logic::SimResult bad = sim_.simulate_faulty_with(
        p, gf, fa, options.sequential_patterns && !state.empty() ? &state
                                                                 : nullptr);
    if (options.sequential_patterns) state = bad.net_values;

    bool hit = false;
    if (bad.iddq_flag && options.observe_iddq) {
      rec.detected_iddq = true;
      hit = true;
    }
    for (const logic::NetId po : ckt_.primary_outputs()) {
      const LogicV g = good.value(po);
      const LogicV b = bad.value(po);
      if (is_binary(g) && is_binary(b) && g != b) {
        rec.detected_output = true;
        hit = true;
      } else if (is_binary(g) && !is_binary(b)) {
        rec.potential = true;
      }
    }
    if (hit && rec.first_pattern < 0)
      rec.first_pattern = static_cast<int>(pi);
  }
  return rec;
}

DetectionRecord FaultSimulator::simulate_transistor_packed(
    const EvalContext& ctx, const Fault& fault,
    const gates::FaultAnalysis& fa, const FaultSimOptions& options) const {
  DetectionRecord rec;
  std::vector<std::uint64_t> values(
      static_cast<std::size_t>(ckt_.net_count()), 0);

  for (const EvalContext::Batch& batch : ctx.batches()) {
    for (logic::NetId n = 0; n < ckt_.net_count(); ++n)
      values[static_cast<std::size_t>(n)] =
          ckt_.constant_of(n) == LogicV::k1 ? ~0ull : 0ull;
    for (std::size_t i = 0; i < batch.pi_words.size(); ++i)
      values[static_cast<std::size_t>(ckt_.primary_inputs()[i])] =
          batch.pi_words[i];

    // Faulty machine: every gate evaluates normally except the faulted
    // one, whose output word comes from its dictionary's faulty-logic
    // table.  Its local inputs equal the good machine's (the circuit is
    // acyclic and this is the only faulted gate), so the contention word
    // doubles as the per-pattern IDDQ excitation mask.
    std::uint64_t contention = 0;
    for (const int gid : ckt_.topo_order()) {
      const logic::GateInst& g = ckt_.gate(gid);
      std::uint64_t in[3] = {0, 0, 0};
      for (int i = 0; i < g.input_count(); ++i)
        in[i] =
            values[static_cast<std::size_t>(g.in[static_cast<std::size_t>(i)])];
      std::uint64_t out;
      if (gid == fault.gate) {
        out = 0;
        for (const gates::FaultRow& row : fa.rows) {
          std::uint64_t minterm = ~0ull;
          for (int i = 0; i < g.input_count(); ++i)
            minterm &= ((row.input >> i) & 1u) != 0 ? in[i] : ~in[i];
          if (fa.faulty_logic(row.input) == 1) out |= minterm;
          if (row.faulty.contention) contention |= minterm;
        }
      } else {
        out = logic::eval_cell_packed(g.kind, in[0], in[1], in[2]);
      }
      values[static_cast<std::size_t>(g.out)] = out;
    }

    std::uint64_t diff = 0;
    for (const logic::NetId po : ckt_.primary_outputs())
      diff |= (batch.net_words[static_cast<std::size_t>(po)] ^
               values[static_cast<std::size_t>(po)]);
    diff &= batch.active;
    contention &= batch.active;

    if (diff != 0) rec.detected_output = true;
    const std::uint64_t iddq = options.observe_iddq ? contention : 0;
    if (iddq != 0) rec.detected_iddq = true;
    const std::uint64_t hit = diff | iddq;
    if (hit != 0 && rec.first_pattern < 0)
      rec.first_pattern =
          static_cast<int>(batch.base) + __builtin_ctzll(hit);
  }
  return rec;
}

bool FaultSimulator::stuck_open_detected(const Fault& fault,
                                         const Pattern& init,
                                         const Pattern& test) const {
  return simulate_transistor_fault(fault, {init, test}, {})
      .detected_output;
}

}  // namespace cpsinw::faults
