#include "faults/diagnosis.hpp"

#include <algorithm>

#include "gates/fault_dictionary.hpp"

namespace cpsinw::faults {

using logic::LogicV;
using logic::Pattern;

namespace {

/// Simulated (outputs, iddq) of a fault under one pattern.
struct Predicted {
  std::vector<LogicV> outputs;
  bool iddq = false;
};

Predicted predict(const logic::Circuit& ckt, const Fault& fault,
                  const Pattern& pattern) {
  Predicted out;
  const logic::Simulator sim(ckt);
  if (fault.site == FaultSite::kGateTransistor) {
    const logic::GateFault gf{fault.gate, fault.cell_fault};
    const logic::SimResult r = sim.simulate_faulty(pattern, gf);
    out.iddq = r.iddq_flag;
    for (const logic::NetId po : ckt.primary_outputs())
      out.outputs.push_back(r.value(po));
    return out;
  }
  // Line fault: packed single-pattern simulation with the forced line.
  const FaultSimulator fsim(ckt);
  const logic::SimResult good = sim.simulate(pattern);
  // Re-simulate with the line forced by flipping through the public API:
  // detection tells us whether each PO differs; reconstruct values.
  // (Cheap direct approach: force via a faulty-value pass.)
  std::vector<LogicV> values = good.net_values;
  const LogicV forced = fault.stuck_at_one ? LogicV::k1 : LogicV::k0;
  if (fault.site == FaultSite::kNet)
    values[static_cast<std::size_t>(fault.net)] = forced;
  for (const int gid : ckt.topo_order()) {
    const logic::GateInst& g = ckt.gate(gid);
    LogicV in_v[3] = {LogicV::kX, LogicV::kX, LogicV::kX};
    for (int i = 0; i < g.input_count(); ++i) {
      in_v[i] =
          values[static_cast<std::size_t>(g.in[static_cast<std::size_t>(i)])];
      if (fault.site == FaultSite::kGateInput && fault.gate == gid &&
          fault.pin == i)
        in_v[i] = forced;
    }
    LogicV o = logic::eval_cell_x(g.kind, in_v[0], in_v[1], in_v[2]);
    if (fault.site == FaultSite::kNet && g.out == fault.net) o = forced;
    values[static_cast<std::size_t>(g.out)] = o;
  }
  for (const logic::NetId po : ckt.primary_outputs())
    out.outputs.push_back(values[static_cast<std::size_t>(po)]);
  // A hard line short to a rail draws contention current whenever the
  // driver fights it (good value differs from the forced value).
  if (fault.site == FaultSite::kNet)
    out.iddq = is_binary(good.value(fault.net)) &&
               good.value(fault.net) != forced;
  return out;
}

/// Does a simulated response explain an observation?  X predictions are
/// compatible with anything.
bool compatible(const Predicted& predicted, const Observation& observed) {
  if (predicted.outputs.size() != observed.outputs.size()) return false;
  for (std::size_t i = 0; i < predicted.outputs.size(); ++i) {
    const LogicV p = predicted.outputs[i];
    const LogicV o = observed.outputs[i];
    if (is_binary(p) && is_binary(o) && p != o) return false;
  }
  if (predicted.iddq != observed.iddq_elevated) return false;
  return true;
}

}  // namespace

Observation predict_observation(const logic::Circuit& ckt,
                                const Fault& fault,
                                const Pattern& pattern) {
  const Predicted p = predict(ckt, fault, pattern);
  return {pattern, p.outputs, p.iddq};
}

Observation predict_good_observation(const logic::Circuit& ckt,
                                     const Pattern& pattern) {
  const logic::Simulator sim(ckt);
  const logic::SimResult r = sim.simulate(pattern);
  Observation obs;
  obs.pattern = pattern;
  for (const logic::NetId po : ckt.primary_outputs())
    obs.outputs.push_back(r.value(po));
  obs.iddq_elevated = false;
  return obs;
}

std::vector<DiagnosisCandidate> diagnose(
    const logic::Circuit& ckt, std::span<const Observation> observations,
    const std::vector<Fault>& candidates) {
  std::vector<DiagnosisCandidate> ranked;
  ranked.reserve(candidates.size());
  for (const Fault& f : candidates) {
    DiagnosisCandidate c;
    c.fault = f;
    for (const Observation& obs : observations) {
      const Predicted p = predict(ckt, f, obs.pattern);
      if (compatible(p, obs))
        ++c.matches;
      else
        ++c.mismatches;
    }
    const int total = c.matches + c.mismatches;
    c.score = total == 0 ? 0.0
                         : static_cast<double>(c.matches) /
                               static_cast<double>(total);
    ranked.push_back(std::move(c));
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const DiagnosisCandidate& a,
                      const DiagnosisCandidate& b) {
                     return a.score > b.score;
                   });
  return ranked;
}

}  // namespace cpsinw::faults
