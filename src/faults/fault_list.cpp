#include "faults/fault_list.hpp"

#include <algorithm>
#include <sstream>

#include "gates/dictionary_cache.hpp"
#include "gates/fault_dictionary.hpp"

namespace cpsinw::faults {

std::string Fault::describe(const logic::Circuit& ckt) const {
  std::ostringstream oss;
  switch (site) {
    case FaultSite::kNet:
      oss << "net " << ckt.net_name(net) << (stuck_at_one ? " SA1" : " SA0");
      break;
    case FaultSite::kGateInput:
      oss << ckt.gate(gate).name << ".in" << pin
          << (stuck_at_one ? " SA1" : " SA0");
      break;
    case FaultSite::kGateTransistor: {
      const auto& tpl = gates::cell(ckt.gate(gate).kind);
      oss << ckt.gate(gate).name << '.'
          << tpl.transistors[static_cast<std::size_t>(cell_fault.transistor)]
                 .label
          << ' ' << gates::to_string(cell_fault.kind);
      break;
    }
  }
  return oss.str();
}

CollapseTarget collapse_target(gates::CellKind kind,
                               const gates::FaultAnalysis& fa) {
  CollapseTarget t;
  // Floating or marginal rows need sequence/X semantics and cannot be
  // represented by a forced line value.  Contention does not block the
  // mapping by itself — it is recorded in `contends` and the caller
  // decides whether IDDQ observation makes it disqualifying.
  if (!fa.compiled_binary) return t;
  t.contends = fa.compiled_contention != 0;
  const unsigned combos = static_cast<unsigned>(fa.rows.size());
  const unsigned mask = (1u << combos) - 1u;
  const unsigned truth = fa.compiled_truth & mask;
  if (truth == 0 || truth == mask) {
    t.kind = CollapseTarget::Kind::kOutputStuck;
    t.stuck_one = truth != 0;
    return t;
  }
  unsigned n_in = 0;
  while ((1u << n_in) < combos) ++n_in;
  for (unsigned i = 0; i < n_in; ++i) {
    for (unsigned b = 0; b < 2; ++b) {
      bool match = true;
      for (unsigned v = 0; v < combos && match; ++v) {
        const unsigned forced = b != 0 ? (v | (1u << i)) : (v & ~(1u << i));
        match = ((truth >> v) & 1u) == gates::good_output(kind, forced);
      }
      if (match) {
        t.kind = CollapseTarget::Kind::kInputStuck;
        t.pin = static_cast<int>(i);
        t.stuck_one = b != 0;
        return t;
      }
    }
  }
  t.contends = false;  // no mapping — leave the default-constructed shape
  return t;
}

bool collapse_representable(const logic::Circuit& ckt,
                            const logic::GateInst& g,
                            const CollapseTarget& t) {
  if (t.kind == CollapseTarget::Kind::kOutputStuck)
    // The output stem is the very net the gate drives: forcing it is
    // exactly what the fault does, wherever the net is observed.
    // Constant nets carry no line faults.
    return !is_binary(ckt.constant_of(g.out));
  if (t.kind != CollapseTarget::Kind::kInputStuck) return false;
  // An input mapping is a *branch* fault: it perturbs only this gate's
  // reading of the net.  With fanout > 1 the universe lists that branch
  // fault directly.  With fanout <= 1 the stem stands in for the branch —
  // but only when the stem is not otherwise observed: a net that is also
  // a primary output is detected at the PO by its stem fault while the
  // branch (and the transistor fault) is not.
  const logic::NetId net = g.in[static_cast<std::size_t>(t.pin)];
  if (is_binary(ckt.constant_of(net))) return false;
  if (ckt.fanout(net).size() > 1) return true;
  const auto& pos = ckt.primary_outputs();
  return std::find(pos.begin(), pos.end(), net) == pos.end();
}

std::vector<Fault> generate_fault_list(const logic::Circuit& ckt,
                                       const FaultListOptions& options) {
  std::vector<Fault> out;

  if (options.include_line_stuck_at) {
    for (logic::NetId n = 0; n < ckt.net_count(); ++n) {
      if (is_binary(ckt.constant_of(n))) continue;  // constant nets excluded
      out.push_back(Fault::net_stuck(n, false));
      out.push_back(Fault::net_stuck(n, true));
      // Branch faults only matter on fanout stems (branch != stem there).
      if (!options.collapse || ckt.fanout(n).size() > 1) {
        for (const int gid : ckt.fanout(n)) {
          const logic::GateInst& g = ckt.gate(gid);
          for (int pin = 0; pin < g.input_count(); ++pin) {
            if (g.in[static_cast<std::size_t>(pin)] != n) continue;
            out.push_back(Fault::input_stuck(gid, pin, false));
            out.push_back(Fault::input_stuck(gid, pin, true));
          }
        }
      }
    }
  }

  if (options.include_transistor_faults) {
    for (const logic::GateInst& g : ckt.gates()) {
      std::vector<const gates::FaultAnalysis*> kept;
      for (const gates::CellFault& cf :
           gates::enumerate_transistor_faults(g.kind)) {
        const gates::FaultAnalysis& fa =
            gates::DictionaryCache::global().lookup(g.kind, cf);
        // A polarity bridge onto the rail the PG is already tied to is not
        // an electrical defect: never listed.  Other benign-looking faults
        // (e.g. a statically-masked channel break) stay in the universe —
        // they are real defects that the CB procedure may still reveal.
        const bool polarity_fault =
            cf.kind == gates::TransistorFault::kStuckAtNType ||
            cf.kind == gates::TransistorFault::kStuckAtPType;
        if (polarity_fault && fa.is_benign()) continue;
        // Cross-class collapse: a transistor fault behaving exactly as a
        // line stuck-at is represented by that line fault when it is in
        // the universe (stem for fanout-free nets, branch otherwise —
        // the same line either way; constant nets carry no line faults).
        if (options.collapse && options.cross_class_collapse &&
            options.include_line_stuck_at) {
          const CollapseTarget t = collapse_target(g.kind, fa);
          // A contending mapping (stuck-on drawing IDDQ) is only
          // logic-equivalent: keep the fault when IDDQ is observed.
          const bool applicable = t.kind != CollapseTarget::Kind::kNone &&
                                  (!t.contends || !options.observe_iddq);
          if (applicable &&
              collapse_representable(ckt, g, t))
            continue;
        }
        if (options.collapse) {
          bool duplicate = false;
          for (const gates::FaultAnalysis* prev : kept)
            if (fa.equivalent_to(*prev)) {
              duplicate = true;
              break;
            }
          if (duplicate) continue;
          kept.push_back(&fa);
        }
        out.push_back(Fault::transistor(g.id, cf.transistor, cf.kind));
      }
    }
  }
  return out;
}

int count_line_faults(const std::vector<Fault>& faults) {
  int n = 0;
  for (const Fault& f : faults)
    if (f.site != FaultSite::kGateTransistor) ++n;
  return n;
}

int count_transistor_faults(const std::vector<Fault>& faults) {
  int n = 0;
  for (const Fault& f : faults)
    if (f.site == FaultSite::kGateTransistor) ++n;
  return n;
}

}  // namespace cpsinw::faults
