#include "faults/fault_list.hpp"

#include <sstream>

#include "gates/dictionary_cache.hpp"
#include "gates/fault_dictionary.hpp"

namespace cpsinw::faults {

std::string Fault::describe(const logic::Circuit& ckt) const {
  std::ostringstream oss;
  switch (site) {
    case FaultSite::kNet:
      oss << "net " << ckt.net_name(net) << (stuck_at_one ? " SA1" : " SA0");
      break;
    case FaultSite::kGateInput:
      oss << ckt.gate(gate).name << ".in" << pin
          << (stuck_at_one ? " SA1" : " SA0");
      break;
    case FaultSite::kGateTransistor: {
      const auto& tpl = gates::cell(ckt.gate(gate).kind);
      oss << ckt.gate(gate).name << '.'
          << tpl.transistors[static_cast<std::size_t>(cell_fault.transistor)]
                 .label
          << ' ' << gates::to_string(cell_fault.kind);
      break;
    }
  }
  return oss.str();
}

std::vector<Fault> generate_fault_list(const logic::Circuit& ckt,
                                       const FaultListOptions& options) {
  std::vector<Fault> out;

  if (options.include_line_stuck_at) {
    for (logic::NetId n = 0; n < ckt.net_count(); ++n) {
      if (is_binary(ckt.constant_of(n))) continue;  // constant nets excluded
      out.push_back(Fault::net_stuck(n, false));
      out.push_back(Fault::net_stuck(n, true));
      // Branch faults only matter on fanout stems (branch != stem there).
      if (!options.collapse || ckt.fanout(n).size() > 1) {
        for (const int gid : ckt.fanout(n)) {
          const logic::GateInst& g = ckt.gate(gid);
          for (int pin = 0; pin < g.input_count(); ++pin) {
            if (g.in[static_cast<std::size_t>(pin)] != n) continue;
            out.push_back(Fault::input_stuck(gid, pin, false));
            out.push_back(Fault::input_stuck(gid, pin, true));
          }
        }
      }
    }
  }

  if (options.include_transistor_faults) {
    for (const logic::GateInst& g : ckt.gates()) {
      std::vector<const gates::FaultAnalysis*> kept;
      for (const gates::CellFault& cf :
           gates::enumerate_transistor_faults(g.kind)) {
        const gates::FaultAnalysis& fa =
            gates::DictionaryCache::global().lookup(g.kind, cf);
        // A polarity bridge onto the rail the PG is already tied to is not
        // an electrical defect: never listed.  Other benign-looking faults
        // (e.g. a statically-masked channel break) stay in the universe —
        // they are real defects that the CB procedure may still reveal.
        const bool polarity_fault =
            cf.kind == gates::TransistorFault::kStuckAtNType ||
            cf.kind == gates::TransistorFault::kStuckAtPType;
        if (polarity_fault && fa.is_benign()) continue;
        if (options.collapse) {
          bool duplicate = false;
          for (const gates::FaultAnalysis* prev : kept)
            if (fa.equivalent_to(*prev)) {
              duplicate = true;
              break;
            }
          if (duplicate) continue;
          kept.push_back(&fa);
        }
        out.push_back(Fault::transistor(g.id, cf.transistor, cf.kind));
      }
    }
  }
  return out;
}

int count_line_faults(const std::vector<Fault>& faults) {
  int n = 0;
  for (const Fault& f : faults)
    if (f.site != FaultSite::kGateTransistor) ++n;
  return n;
}

int count_transistor_faults(const std::vector<Fault>& faults) {
  int n = 0;
  for (const Fault& f : faults)
    if (f.site == FaultSite::kGateTransistor) ++n;
  return n;
}

}  // namespace cpsinw::faults
