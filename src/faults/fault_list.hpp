// Fault-list generation and collapsing.
#pragma once

#include <vector>

#include "faults/fault.hpp"

namespace cpsinw::faults {

/// Options for fault-list generation.
struct FaultListOptions {
  bool include_line_stuck_at = true;
  bool include_transistor_faults = true;
  /// Collapse behaviourally-equivalent transistor faults within each gate
  /// (dictionary comparison) and structurally-equivalent line faults
  /// (fanout-free stem/branch merging).
  bool collapse = true;
};

/// Enumerates the fault universe of a circuit.
/// Line stuck-at: SA0/SA1 on every net stem and every gate input branch of
/// nets with fanout > 1.  Transistor: all four fault kinds on every device
/// of every gate instance.
[[nodiscard]] std::vector<Fault> generate_fault_list(
    const logic::Circuit& ckt, const FaultListOptions& options = {});

/// Number of faults in a list that belong to the classical (line stuck-at)
/// universe — used by coverage comparisons with/without the new models.
[[nodiscard]] int count_line_faults(const std::vector<Fault>& faults);

/// Number of transistor-level faults.
[[nodiscard]] int count_transistor_faults(const std::vector<Fault>& faults);

}  // namespace cpsinw::faults
