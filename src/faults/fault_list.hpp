// Fault-list generation and collapsing.
#pragma once

#include <vector>

#include "faults/fault.hpp"
#include "gates/fault_dictionary.hpp"

namespace cpsinw::faults {

/// Options for fault-list generation.
struct FaultListOptions {
  bool include_line_stuck_at = true;
  bool include_transistor_faults = true;
  /// Collapse behaviourally-equivalent transistor faults within each gate
  /// (dictionary comparison) and structurally-equivalent line faults
  /// (fanout-free stem/branch merging).
  bool collapse = true;
  /// Also collapse *across* classes: a transistor fault whose faulty logic
  /// table is exactly a line stuck-at is represented by that line fault
  /// instead of being listed.  Requires `collapse` and
  /// `include_line_stuck_at` (the representative must be in the universe).
  bool cross_class_collapse = true;
  /// Whether the campaign observes IDDQ.  A stuck-on transistor whose
  /// logic table equals a line stuck-at still draws quiescent current on
  /// its contention rows, which a line fault never does — so such faults
  /// only collapse when IDDQ is *not* observed.  Contention-free mappings
  /// collapse either way.
  bool observe_iddq = false;
};

/// The line stuck-at fault a transistor fault is behaviourally equivalent
/// to, if any.  Only faults whose dictionary is a pure combinational table
/// substitution over binary stimuli (`compiled_binary`) map; a constant
/// faulty table maps to the output stuck-at (checked first — an inverter
/// input SA0 is *also* output SA1), otherwise a table equal to the good
/// function with one input forced maps to that input-branch stuck-at.
/// `contends` marks mappings that are only logic-equivalent: the fault has
/// an IDDQ signature (nonzero `compiled_contention`) its representative
/// lacks, so the collapse is valid only when IDDQ is not observed.
struct CollapseTarget {
  enum class Kind { kNone, kOutputStuck, kInputStuck };
  Kind kind = Kind::kNone;
  int pin = -1;           ///< input pin, for kInputStuck
  bool stuck_one = false;
  bool contends = false;  ///< mapping holds for logic observation only
};

[[nodiscard]] CollapseTarget collapse_target(gates::CellKind kind,
                                             const gates::FaultAnalysis& fa);

/// Whether a mapping found by `collapse_target` has a faithful line-fault
/// representative in the collapsed universe of `ckt` for gate `g`: the
/// output stem for output mappings, the listed branch fault on fanout
/// stems, or the stem itself on fanout-free nets that are not otherwise
/// observed (a net that is also a primary output sees its stem fault at
/// the PO, which the gate-local transistor fault does not affect).
[[nodiscard]] bool collapse_representable(const logic::Circuit& ckt,
                                          const logic::GateInst& g,
                                          const CollapseTarget& t);

/// Enumerates the fault universe of a circuit.
/// Line stuck-at: SA0/SA1 on every net stem and every gate input branch of
/// nets with fanout > 1.  Transistor: all four fault kinds on every device
/// of every gate instance.
[[nodiscard]] std::vector<Fault> generate_fault_list(
    const logic::Circuit& ckt, const FaultListOptions& options = {});

/// Number of faults in a list that belong to the classical (line stuck-at)
/// universe — used by coverage comparisons with/without the new models.
[[nodiscard]] int count_line_faults(const std::vector<Fault>& faults);

/// Number of transistor-level faults.
[[nodiscard]] int count_transistor_faults(const std::vector<Fault>& faults);

}  // namespace cpsinw::faults
