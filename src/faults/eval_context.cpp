#include "faults/eval_context.hpp"

#include <stdexcept>

namespace cpsinw::faults {

namespace {

const logic::Circuit& require_finalized(const logic::Circuit& ckt) {
  if (!ckt.finalized())
    throw std::invalid_argument("EvalContext: circuit not finalized");
  return ckt;
}

}  // namespace

EvalContext::EvalContext(const logic::Circuit& ckt,
                         std::vector<logic::Pattern> patterns,
                         gates::DictionaryCache* cache)
    : ckt_(&ckt),
      cache_(cache != nullptr ? cache : &gates::DictionaryCache::global()),
      patterns_(std::move(patterns)),
      sim_(require_finalized(ckt)) {
  // Scalar good machine, once per pattern (this also validates arity);
  // the compilation behind sim_ is shared by every pass below.
  good_.reserve(patterns_.size());
  for (const logic::Pattern& p : patterns_) good_.push_back(sim_.simulate(p));

  // Packed batches need fully-specified patterns; an X anywhere keeps the
  // context scalar-only (the serial transistor paths still work).
  packed_ = true;
  for (const logic::Pattern& p : patterns_) {
    for (const logic::LogicV v : p)
      if (!is_binary(v)) {
        packed_ = false;
        break;
      }
    if (!packed_) break;
  }
  if (!packed_) return;

  // SoA bit-planes: word `w` of net `n` lives at [n * stride + w], so the
  // multi-word kernels stream one net's words contiguously.  The stride
  // pads up to the SIMD group width; padding columns evaluate the
  // all-zero-input pattern and are masked off by active_words().
  n_words_ = (patterns_.size() + 63) / 64;
  stride_ = logic::CompiledCircuit::plane_stride(n_words_);
  const std::size_t n_pi = ckt.primary_inputs().size();
  pi_planes_.assign(n_pi * stride_, 0);
  for (std::size_t base = 0; base < patterns_.size(); base += 64) {
    const std::size_t count =
        std::min<std::size_t>(64, patterns_.size() - base);
    Batch b;
    b.base = base;
    b.count = count;
    b.active = count == 64 ? ~0ull : ((1ull << count) - 1ull);
    const std::vector<logic::Pattern> slice(
        patterns_.begin() + static_cast<long>(base),
        patterns_.begin() + static_cast<long>(base + count));
    b.pi_words = logic::pack_patterns(ckt, slice);
    const std::size_t w = base / 64;
    for (std::size_t i = 0; i < n_pi; ++i)
      pi_planes_[i * stride_ + w] = b.pi_words[i];
    active_words_.push_back(b.active);
    batches_.push_back(std::move(b));
  }
  sim_.compiled().init_packed_planes(pi_planes_.data(), stride_, good_planes_);
  sim_.compiled().eval_packed_planes(good_planes_, stride_);
}

}  // namespace cpsinw::faults
