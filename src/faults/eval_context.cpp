#include "faults/eval_context.hpp"

#include <stdexcept>

#include "gates/cell.hpp"

namespace cpsinw::faults {

namespace {

const logic::Circuit& require_finalized(const logic::Circuit& ckt) {
  if (!ckt.finalized())
    throw std::invalid_argument("EvalContext: circuit not finalized");
  return ckt;
}

/// Word-parallel cell evaluation over input words already in hand: the
/// 2^n-minterm expansion of the cell's Boolean function (n <= 3, so at
/// most 8 minterms).
std::uint64_t eval_cell_word(gates::CellKind kind, unsigned n_in,
                             const std::uint64_t* in) {
  std::uint64_t out = 0;
  const unsigned combos = 1u << n_in;
  for (unsigned v = 0; v < combos; ++v) {
    if (gates::good_output(kind, v) == 0) continue;
    std::uint64_t m = ~0ull;
    for (unsigned i = 0; i < n_in; ++i)
      m &= ((v >> i) & 1u) != 0 ? in[i] : ~in[i];
    out |= m;
  }
  return out;
}

}  // namespace

EvalContext::EvalContext(const logic::Circuit& ckt,
                         std::vector<logic::Pattern> patterns,
                         gates::DictionaryCache* cache)
    : ckt_(&ckt),
      cache_(cache != nullptr ? cache : &gates::DictionaryCache::global()),
      patterns_(std::move(patterns)),
      sim_(require_finalized(ckt)) {
  // Scalar good machine, once per pattern (this also validates arity);
  // the compilation behind sim_ is shared by every pass below.
  good_.reserve(patterns_.size());
  for (const logic::Pattern& p : patterns_) good_.push_back(sim_.simulate(p));

  // Packed batches need fully-specified patterns; an X anywhere keeps the
  // context scalar-only (the serial transistor paths still work).
  packed_ = true;
  for (const logic::Pattern& p : patterns_) {
    for (const logic::LogicV v : p)
      if (!is_binary(v)) {
        packed_ = false;
        break;
      }
    if (!packed_) break;
  }
  if (!packed_) return;

  // SoA bit-planes: word `w` of net `n` lives at [n * stride + w], so the
  // multi-word kernels stream one net's words contiguously.  The stride
  // pads up to the SIMD group width; padding columns evaluate the
  // all-zero-input pattern and are masked off by active_words().
  n_words_ = (patterns_.size() + 63) / 64;
  stride_ = logic::CompiledCircuit::plane_stride(n_words_);
  const std::size_t n_pi = ckt.primary_inputs().size();
  pi_planes_.assign(n_pi * stride_, 0);
  for (std::size_t base = 0; base < patterns_.size(); base += 64) {
    const std::size_t count =
        std::min<std::size_t>(64, patterns_.size() - base);
    Batch b;
    b.base = base;
    b.count = count;
    b.active = count == 64 ? ~0ull : ((1ull << count) - 1ull);
    const std::vector<logic::Pattern> slice(
        patterns_.begin() + static_cast<long>(base),
        patterns_.begin() + static_cast<long>(base + count));
    b.pi_words = logic::pack_patterns(ckt, slice);
    const std::size_t w = base / 64;
    for (std::size_t i = 0; i < n_pi; ++i)
      pi_planes_[i * stride_ + w] = b.pi_words[i];
    active_words_.push_back(b.active);
    batches_.push_back(std::move(b));
  }
  sim_.compiled().init_packed_planes(pi_planes_.data(), stride_, good_planes_);
  sim_.compiled().eval_packed_planes(good_planes_, stride_);

  // Criticality planes, built only where critical-path tracing is exact:
  // one primary output and every net feeding at most one gate pin
  // (fanout() is per-pin, so a net wired to two pins of one gate also
  // disqualifies — those pins reconverge inside the cell).
  bool cpt = n_words_ > 0 && ckt.primary_outputs().size() == 1;
  for (logic::NetId n = 0; cpt && n < ckt.net_count(); ++n)
    cpt = ckt.fanout(n).size() <= 1;
  if (cpt) build_crit_planes();
}

void EvalContext::build_crit_planes() {
  // Backward walk over the levelized gate list: the PO is critical under
  // every pattern; an input pin is critical exactly when its gate's output
  // is critical and the pin is sensitized (flipping it flips the output).
  // |= accumulates so a net that is both the PO and a gate input keeps its
  // direct criticality.
  const logic::CompiledCircuit& cc = sim_.compiled();
  crit_planes_.assign(good_planes_.size(), 0);
  const auto po = static_cast<std::size_t>(ckt_->primary_outputs()[0]);
  std::uint64_t* const crit_po = crit_planes_.data() + po * stride_;
  for (std::size_t w = 0; w < n_words_; ++w) crit_po[w] = ~0ull;

  const std::vector<logic::CompiledCircuit::GateRec>& gates = cc.gates();
  for (std::size_t k = gates.size(); k-- > 0;) {
    const logic::CompiledCircuit::GateRec& g = gates[k];
    const std::uint64_t* const crit_out =
        crit_planes_.data() + static_cast<std::size_t>(g.out) * stride_;
    const std::uint64_t* const good_out =
        good_planes_.data() + static_cast<std::size_t>(g.out) * stride_;
    for (unsigned i = 0; i < g.n_in; ++i) {
      std::uint64_t* const crit_in =
          crit_planes_.data() + static_cast<std::size_t>(g.in[i]) * stride_;
      for (std::size_t w = 0; w < n_words_; ++w) {
        std::uint64_t ins[3] = {0, 0, 0};
        for (unsigned j = 0; j < g.n_in; ++j)
          ins[j] =
              good_planes_[static_cast<std::size_t>(g.in[j]) * stride_ + w];
        ins[i] = ~ins[i];
        const std::uint64_t sens =
            eval_cell_word(g.kind, g.n_in, ins) ^ good_out[w];
        crit_in[w] |= crit_out[w] & sens;
      }
    }
  }
  cpt_ = true;
}

}  // namespace cpsinw::faults
