#include "faults/bridge.hpp"

#include <set>
#include <stdexcept>

namespace cpsinw::faults {

using logic::LogicV;
using logic::Pattern;

const char* to_string(BridgeBehavior behavior) {
  switch (behavior) {
    case BridgeBehavior::kWiredAnd: return "wired-AND";
    case BridgeBehavior::kWiredOr: return "wired-OR";
    case BridgeBehavior::kDominantA: return "dominant-A";
    case BridgeBehavior::kDominantB: return "dominant-B";
  }
  return "?";
}

std::vector<BridgeFault> enumerate_adjacent_bridges(
    const logic::Circuit& ckt) {
  std::set<std::pair<logic::NetId, logic::NetId>> pairs;
  for (const logic::GateInst& g : ckt.gates()) {
    // Input-input pairs of the same gate.
    for (int i = 0; i < g.input_count(); ++i) {
      for (int j = i + 1; j < g.input_count(); ++j) {
        const logic::NetId a = g.in[static_cast<std::size_t>(i)];
        const logic::NetId b = g.in[static_cast<std::size_t>(j)];
        if (a != b) pairs.insert({std::min(a, b), std::max(a, b)});
      }
    }
    // Output-input pairs of the same gate.
    for (int i = 0; i < g.input_count(); ++i) {
      const logic::NetId a = g.in[static_cast<std::size_t>(i)];
      if (a != g.out) pairs.insert({std::min(a, g.out), std::max(a, g.out)});
    }
  }
  std::vector<BridgeFault> out;
  for (const auto& [a, b] : pairs) {
    if (is_binary(ckt.constant_of(a)) || is_binary(ckt.constant_of(b)))
      continue;  // bridges to rails are the stuck-at universe
    for (const BridgeBehavior beh :
         {BridgeBehavior::kWiredAnd, BridgeBehavior::kWiredOr,
          BridgeBehavior::kDominantA, BridgeBehavior::kDominantB})
      out.push_back({a, b, beh});
  }
  return out;
}

namespace {

/// Wired resolution of the two bridged net values.
std::pair<LogicV, LogicV> resolve(BridgeBehavior behavior, LogicV a,
                                  LogicV b) {
  const auto and2 = [](LogicV x, LogicV y) {
    if (x == LogicV::k0 || y == LogicV::k0) return LogicV::k0;
    if (x == LogicV::k1 && y == LogicV::k1) return LogicV::k1;
    return LogicV::kX;
  };
  const auto or2 = [](LogicV x, LogicV y) {
    if (x == LogicV::k1 || y == LogicV::k1) return LogicV::k1;
    if (x == LogicV::k0 && y == LogicV::k0) return LogicV::k0;
    return LogicV::kX;
  };
  switch (behavior) {
    case BridgeBehavior::kWiredAnd: {
      const LogicV w = and2(a, b);
      return {w, w};
    }
    case BridgeBehavior::kWiredOr: {
      const LogicV w = or2(a, b);
      return {w, w};
    }
    case BridgeBehavior::kDominantA: return {a, a};
    case BridgeBehavior::kDominantB: return {b, b};
  }
  return {LogicV::kX, LogicV::kX};
}

}  // namespace

std::vector<LogicV> simulate_bridge(const logic::Circuit& ckt,
                                    const BridgeFault& fault,
                                    const Pattern& pattern) {
  if (fault.a < 0 || fault.b < 0 || fault.a == fault.b)
    throw std::invalid_argument("simulate_bridge: bad net pair");
  const logic::Simulator sim(ckt);

  // Fixpoint iteration over levelized evaluation with the wired values
  // substituted after each pass; a bridge inside a (now closed) loop that
  // keeps flipping resolves to X.
  std::vector<LogicV> values = sim.simulate(pattern).net_values;
  for (int round = 0; round < 4; ++round) {
    // Apply the bridge to the driver values.
    const auto [wa, wb] =
        resolve(fault.behavior, values[static_cast<std::size_t>(fault.a)],
                values[static_cast<std::size_t>(fault.b)]);
    std::vector<LogicV> next = values;
    next[static_cast<std::size_t>(fault.a)] = wa;
    next[static_cast<std::size_t>(fault.b)] = wb;
    // Re-evaluate downstream logic with the wired values pinned; the
    // bridged nets' own drivers keep their computed values (the short
    // overrides them electrically).
    for (const int gid : ckt.topo_order()) {
      const logic::GateInst& g = ckt.gate(gid);
      if (g.out == fault.a || g.out == fault.b) continue;
      const auto in_at = [&](int i) {
        return g.in[static_cast<std::size_t>(i)] >= 0
                   ? next[static_cast<std::size_t>(
                         g.in[static_cast<std::size_t>(i)])]
                   : LogicV::kX;
      };
      next[static_cast<std::size_t>(g.out)] =
          logic::eval_cell_x(g.kind, in_at(0), in_at(1), in_at(2));
    }
    // Recompute the *driver* values of the bridged nets from the updated
    // fanin (feedback handling), then check for a fixpoint.
    std::vector<LogicV> driver_values = next;
    for (const int gid : ckt.topo_order()) {
      const logic::GateInst& g = ckt.gate(gid);
      if (g.out != fault.a && g.out != fault.b) continue;
      const auto in_at = [&](int i) {
        return g.in[static_cast<std::size_t>(i)] >= 0
                   ? next[static_cast<std::size_t>(
                         g.in[static_cast<std::size_t>(i)])]
                   : LogicV::kX;
      };
      driver_values[static_cast<std::size_t>(g.out)] =
          logic::eval_cell_x(g.kind, in_at(0), in_at(1), in_at(2));
    }
    if (driver_values == values) return next;
    values = std::move(driver_values);
  }
  // Oscillating feedback bridge: the looped nets are unknown.
  std::vector<LogicV> conservative = sim.simulate(pattern).net_values;
  conservative[static_cast<std::size_t>(fault.a)] = LogicV::kX;
  conservative[static_cast<std::size_t>(fault.b)] = LogicV::kX;
  for (const int gid : ckt.topo_order()) {
    const logic::GateInst& g = ckt.gate(gid);
    if (g.out == fault.a || g.out == fault.b) continue;
    const auto in_at = [&](int i) {
      return g.in[static_cast<std::size_t>(i)] >= 0
                 ? conservative[static_cast<std::size_t>(
                       g.in[static_cast<std::size_t>(i)])]
                 : LogicV::kX;
    };
    conservative[static_cast<std::size_t>(g.out)] =
        logic::eval_cell_x(g.kind, in_at(0), in_at(1), in_at(2));
  }
  return conservative;
}

bool bridge_detected_by_output(const logic::Circuit& ckt,
                               const BridgeFault& fault,
                               const Pattern& pattern) {
  const logic::Simulator sim(ckt);
  const std::vector<LogicV> good = sim.simulate(pattern).net_values;
  const std::vector<LogicV> bad = simulate_bridge(ckt, fault, pattern);
  for (const logic::NetId po : ckt.primary_outputs()) {
    const LogicV g = good[static_cast<std::size_t>(po)];
    const LogicV b = bad[static_cast<std::size_t>(po)];
    if (is_binary(g) && is_binary(b) && g != b) return true;
  }
  return false;
}

bool bridge_excited_for_iddq(const logic::Circuit& ckt,
                             const BridgeFault& fault,
                             const Pattern& pattern) {
  const logic::Simulator sim(ckt);
  const logic::SimResult r = sim.simulate(pattern);
  const LogicV va = r.value(fault.a);
  const LogicV vb = r.value(fault.b);
  return is_binary(va) && is_binary(vb) && va != vb;
}

}  // namespace cpsinw::faults
