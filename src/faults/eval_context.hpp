// Shared evaluation context: everything about one (circuit, pattern set)
// pair that is independent of any particular fault, computed once and
// reused across the whole fault universe.  The seed hot loop re-simulated
// the good machine and re-packed patterns for *every single fault*
// (O(faults x patterns) good-machine work); an EvalContext makes that
// O(patterns): packed PI words and packed good-machine words per
// 64-pattern batch, the per-pattern scalar good SimResult sequence, and a
// memoized fault-dictionary cache.
//
// Ownership and lifetime rules:
//   * the circuit is held by reference and must outlive the context;
//   * the pattern set is owned (copied/moved in), so a context can be
//     shared across shards and threads without aliasing the builder's
//     buffers;
//   * the context is immutable after construction — concurrent readers
//     need no synchronization;
//   * the dictionary cache is borrowed (default: the process-wide
//     gates::DictionaryCache::global()) and must outlive the context.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "gates/dictionary_cache.hpp"
#include "logic/logic_sim.hpp"

namespace cpsinw::faults {

class EvalContext {
 public:
  /// One 64-pattern slice.  The good-machine words that used to live here
  /// (`net_words`) moved to the context-wide SoA planes (good_plane()):
  /// one contiguous row of words per net instead of one vector per batch,
  /// which is what the multi-word SIMD kernels walk.
  struct Batch {
    std::size_t base = 0;        ///< index of the first pattern
    std::size_t count = 0;       ///< patterns in this batch (<= 64)
    std::uint64_t active = 0;    ///< low `count` bits set
    std::vector<std::uint64_t> pi_words;   ///< per PI (pack_patterns order)
  };

  /// Builds the context: per-pattern scalar good simulation always; packed
  /// batches only when every pattern is fully specified (binary).  X-bearing
  /// pattern sets still work for the serial transistor paths — only the
  /// packed line/batch paths require packability.
  /// @param ckt finalized circuit; must outlive the context
  /// @param cache borrowed dictionary cache; nullptr selects global()
  EvalContext(const logic::Circuit& ckt, std::vector<logic::Pattern> patterns,
              gates::DictionaryCache* cache = nullptr);

  [[nodiscard]] const logic::Circuit& circuit() const { return *ckt_; }
  [[nodiscard]] const std::vector<logic::Pattern>& patterns() const {
    return patterns_;
  }
  [[nodiscard]] std::size_t pattern_count() const { return patterns_.size(); }

  /// True when every pattern is fully specified and the packed batches
  /// (and their good-machine planes) were built.
  [[nodiscard]] bool packed() const { return packed_; }
  [[nodiscard]] const std::vector<Batch>& batches() const { return batches_; }

  // ---- SoA bit-planes (built only when packed()) ---------------------------

  /// Pattern words (= batches().size()).
  [[nodiscard]] std::size_t word_count() const { return n_words_; }
  /// Row stride of the plane buffers, in words: word_count() padded to a
  /// multiple of CompiledCircuit::kSimdWords (padding words are computed
  /// but masked off by active_words()).
  [[nodiscard]] std::size_t plane_stride() const { return stride_; }
  /// Good-machine plane base: word `w` of net `n` is
  /// good_planes()[n * plane_stride() + w].
  [[nodiscard]] const std::uint64_t* good_planes() const {
    return good_planes_.data();
  }
  /// Row of good-machine words for one net.
  [[nodiscard]] const std::uint64_t* good_plane(logic::NetId net) const {
    return good_planes_.data() + static_cast<std::size_t>(net) * stride_;
  }
  /// Packed-PI plane base, same layout with one row per primary input.
  [[nodiscard]] const std::uint64_t* pi_planes() const {
    return pi_planes_.data();
  }
  /// Per pattern word: the valid-pattern mask (batches()[w].active).
  [[nodiscard]] const std::vector<std::uint64_t>& active_words() const {
    return active_words_;
  }

  // ---- criticality planes (critical-path tracing) --------------------------

  /// True when the criticality planes were built: packed, at least one
  /// pattern word, exactly one primary output, and every net feeding at
  /// most one gate pin.  On that shape (a fan-out-free single-output
  /// cone) critical-path tracing is exact — no reconvergent path exists
  /// to mask a sensitized line — so line-fault detection can be deduced
  /// from the good machine alone.
  [[nodiscard]] bool cpt_available() const { return cpt_; }
  /// Criticality row of one net: bit p set when flipping the net's value
  /// under pattern p flips the primary output.
  [[nodiscard]] const std::uint64_t* crit_plane(logic::NetId net) const {
    assert(cpt_);
    return crit_planes_.data() + static_cast<std::size_t>(net) * stride_;
  }

  /// Fault-free scalar simulation of pattern `index` (precomputed).
  [[nodiscard]] const logic::SimResult& good(std::size_t index) const {
    assert(index < good_.size());
    return good_[index];
  }

  /// Memoized switch-level dictionary of (kind, fault).
  [[nodiscard]] const gates::FaultAnalysis& dictionary(
      gates::CellKind kind, const gates::CellFault& fault) const {
    return cache_->lookup(kind, fault);
  }

  [[nodiscard]] gates::DictionaryCache& cache() const { return *cache_; }

  /// The circuit compilation the context's good machine was produced by
  /// (one compile per context; shared by every shard of a job).
  [[nodiscard]] const logic::CompiledCircuit& compiled() const {
    return sim_.compiled();
  }

 private:
  const logic::Circuit* ckt_;
  gates::DictionaryCache* cache_;
  std::vector<logic::Pattern> patterns_;
  logic::Simulator sim_;
  std::vector<logic::SimResult> good_;
  std::vector<Batch> batches_;
  std::size_t n_words_ = 0;
  std::size_t stride_ = 0;
  std::vector<std::uint64_t> pi_planes_;    ///< [pi][stride_] PI words
  std::vector<std::uint64_t> good_planes_;  ///< [net][stride_] good words
  std::vector<std::uint64_t> active_words_;
  std::vector<std::uint64_t> crit_planes_;  ///< [net][stride_] criticality
  bool packed_ = false;
  bool cpt_ = false;

  void build_crit_planes();
};

}  // namespace cpsinw::faults
