// PODEM-based automatic test pattern generation.
//
// One engine serves all the fault classes of the paper:
//   * classical line stuck-at (stem and input-branch faults),
//   * functional transistor faults (stuck-on and the new stuck-at-n-type /
//     stuck-at-p-type polarity faults) — the fault transforms the faulted
//     gate's function per its switch-level dictionary, and the engine
//     excites one dictionary cube and propagates the resulting D,
//   * IDDQ tests (justification-only: excite a contention cube; no output
//     propagation is required because the supply current is globally
//     observable — the paper's leakage-detect rows of Table III).
#pragma once

#include <optional>
#include <vector>

#include "atpg/five_valued.hpp"
#include "atpg/scoap.hpp"
#include "faults/fault.hpp"
#include "logic/logic_sim.hpp"

namespace cpsinw::atpg {

/// Outcome of one generation attempt.
enum class AtpgStatus {
  kDetected,     ///< pattern generated (and internally consistent)
  kUntestable,   ///< search space exhausted: no test exists in this mode
  kAborted,      ///< backtrack limit hit
};

/// Readable status.
[[nodiscard]] const char* to_string(AtpgStatus status);

/// A generated test.
struct AtpgResult {
  AtpgStatus status = AtpgStatus::kUntestable;
  logic::Pattern pattern;   ///< fully specified (X choices filled with 0)
  int backtracks = 0;
  /// For functional faults: the excited dictionary cube (local input bits).
  std::optional<unsigned> excited_cube;
};

/// Engine options.
struct PodemOptions {
  int backtrack_limit = 5000;
};

/// PODEM engine bound to a finalized circuit.  SCOAP testability measures
/// are computed once at construction and guide the backtrace (cheapest
/// controllable input first) and D-frontier selection (most observable
/// gate first).  The circuit is also compiled once
/// (logic::CompiledCircuit): every forward-implication pass of the search
/// runs both the good and faulty component off the levelized 4-valued
/// tables instead of re-interpreting the gate list.
class PodemEngine {
 public:
  explicit PodemEngine(const logic::Circuit& ckt);

  /// Generates a test detecting a line stuck-at fault at a primary output.
  [[nodiscard]] AtpgResult generate_line(const faults::Fault& fault,
                                         const PodemOptions& opt = {}) const;

  /// Generates a test for a functional transistor fault (wrong output
  /// value observable at a PO).  Marginal (X) faulty rows are not targeted
  /// — they are only potentially detectable.
  [[nodiscard]] AtpgResult generate_functional(
      const faults::Fault& fault, const PodemOptions& opt = {}) const;

  /// Generates an IDDQ test: justifies a contention cube of the fault.
  [[nodiscard]] AtpgResult generate_iddq(const faults::Fault& fault,
                                         const PodemOptions& opt = {}) const;

  /// Second vector of a two-pattern stuck-open test: at local cube `cube`
  /// the faulted gate's output floats and retains the initialized value
  /// (the complement of the good output `good_is_one`); the engine
  /// justifies the cube and propagates the resulting D to a PO.
  [[nodiscard]] AtpgResult generate_functional_retained(
      const faults::Fault& fault, unsigned cube, bool good_is_one,
      const PodemOptions& opt = {}) const;

  /// Justifies an arbitrary cube at a gate's local inputs (used by the
  /// two-pattern and channel-break generators).
  [[nodiscard]] AtpgResult justify_gate_cube(int gate, unsigned cube,
                                             const PodemOptions& opt = {})
      const;

  /// Justifies a single net to a binary value (used by transition-fault
  /// launch patterns).
  [[nodiscard]] AtpgResult justify_net_value(logic::NetId net,
                                             logic::LogicV value,
                                             const PodemOptions& opt = {})
      const;

  /// Justifies several nets to binary values simultaneously (used by
  /// bridging-fault IDDQ tests, which need opposite values on two nets).
  [[nodiscard]] AtpgResult justify_net_values(
      const std::vector<std::pair<logic::NetId, logic::LogicV>>& goals,
      const PodemOptions& opt = {}) const;

  [[nodiscard]] const logic::Circuit& circuit() const { return ckt_; }

 private:
  const logic::Circuit& ckt_;
  logic::CompiledCircuit cc_;
  std::vector<Testability> scoap_;
};

}  // namespace cpsinw::atpg
