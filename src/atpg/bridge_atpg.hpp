// IDDQ test generation for inter-net bridging faults: justify opposite
// values on the bridged nets — the shorted drivers then fight and the
// supply current rises by orders of magnitude (the classic IDDQ bridge
// test the paper's background reviews).
#pragma once

#include <optional>
#include <vector>

#include "atpg/podem.hpp"
#include "faults/bridge.hpp"

namespace cpsinw::atpg {

/// Result of one bridge IDDQ generation attempt.
struct BridgeTestResult {
  AtpgStatus status = AtpgStatus::kUntestable;
  std::optional<logic::Pattern> pattern;
};

/// Generates a pattern driving the two bridged nets to opposite values.
[[nodiscard]] BridgeTestResult generate_bridge_iddq_test(
    const logic::Circuit& ckt, const faults::BridgeFault& fault,
    const PodemOptions& opt = {});

/// Summary over a bridge universe.
struct BridgeCoverage {
  int total = 0;
  int iddq_covered = 0;
  int also_output_detectable = 0;  ///< voltage-visible with the same set
  std::vector<logic::Pattern> iddq_patterns;

  [[nodiscard]] double coverage() const {
    return total == 0 ? 1.0
                      : static_cast<double>(iddq_covered) /
                            static_cast<double>(total);
  }
};

/// Generates IDDQ tests for every adjacent-net bridge of the circuit.
/// Excitation is behaviour-independent, so each net pair is justified once
/// and the pattern credits all four behaviour models of the pair.
[[nodiscard]] BridgeCoverage generate_all_bridge_tests(
    const logic::Circuit& ckt, const PodemOptions& opt = {});

}  // namespace cpsinw::atpg
