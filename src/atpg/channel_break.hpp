// The paper's new test algorithm for channel break in Dynamic-Polarity
// gates (Sec. V-C).
//
// In a DP gate a broken device is masked: the complementary pass structure
// keeps the function correct and classical two-pattern stuck-open tests
// have nothing to observe.  The paper's procedure:
//   1. deliberately set the polarity of the device under test to the
//      complement of its fault-free value (possible because polarity
//      terminals are fed by accessible dual-rail signals — driving A and
//      A-bar inconsistently emulates the stuck-at-n/p-type fault);
//   2. apply the polarity-fault detection vector (Table III);
//   3. an *intact* device now conducts against the opposite network —
//      wrong output and/or >1e6 leakage; a *broken* device cannot conduct:
//      the response stays clean.  A clean response therefore reveals the
//      channel break.
#pragma once

#include <optional>
#include <vector>

#include "atpg/podem.hpp"
#include "gates/switch_level.hpp"

namespace cpsinw::atpg {

/// Observable response of the cell to a channel-break stimulus.
struct CbSignature {
  int out_read = -1;   ///< 0, 1, or -1 (marginal/X level)
  bool iddq = false;   ///< elevated quiescent current

  [[nodiscard]] bool operator==(const CbSignature&) const = default;
};

/// A generated channel-break test for one transistor of a DP gate.
struct ChannelBreakTest {
  int gate = -1;
  int transistor = -1;
  /// The polarity configuration forced onto the device (which stuck-at
  /// polarity fault the dual-rail pattern emulates).
  gates::TransistorFault emulated_polarity =
      gates::TransistorFault::kStuckAtNType;
  /// Logical input vector of the gate (bit i = input i).
  unsigned local_vector = 0;
  /// The rail-inconsistent dual-rail assignment applied to the gate.
  gates::DualRailBits rails;
  /// Predicted responses; the tester compares the observed signature
  /// against these two references.
  CbSignature expected_intact;
  CbSignature expected_broken;
  /// True for the paper's canonical form: the intact device shows the
  /// polarity-fault symptom and the broken device responds clean.  Cells
  /// whose polarity nets double as pass data (MAJ3's input A) may only
  /// admit the general signature-difference form.
  bool broken_is_clean = false;
  /// Expected symptom from an intact device.
  bool intact_shows_iddq = false;
  bool intact_shows_output_error = false;
  /// Circuit-level pattern justifying the local vector (empty when the
  /// gate inputs could not be justified).
  std::optional<logic::Pattern> pattern;
  /// True when all gate inputs are primary inputs (the rail override can
  /// be applied directly; otherwise dual-rail test access is assumed, as
  /// the paper does).
  bool pi_accessible = false;
};

/// Cell-level outcome of applying a channel-break test.
struct ChannelBreakOutcome {
  CbSignature intact;
  CbSignature broken;
  /// The test works when the two responses differ.
  [[nodiscard]] bool distinguishes() const { return !(intact == broken); }
};

/// Derives a channel-break test for one transistor of a DP cell by
/// searching the input space for a polarity-complement assignment whose
/// response separates intact from broken.  Returns nullopt for SP cells
/// (classical two-pattern tests apply there) or when no separating
/// assignment exists.
[[nodiscard]] std::optional<ChannelBreakTest> derive_cell_test(
    gates::CellKind kind, int transistor);

/// Evaluates a channel-break test at cell level (switch-level engine):
/// simulates the dual-rail assignment against the intact and the broken
/// device.
[[nodiscard]] ChannelBreakOutcome evaluate_cell_test(
    gates::CellKind kind, const ChannelBreakTest& test);

/// Generates channel-break tests for every transistor of every DP gate in
/// a circuit, justifying each gate's local vector through the surrounding
/// logic with PODEM.
[[nodiscard]] std::vector<ChannelBreakTest> generate_channel_break_tests(
    const logic::Circuit& ckt, const PodemOptions& opt = {});

}  // namespace cpsinw::atpg
