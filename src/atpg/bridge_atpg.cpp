#include "atpg/bridge_atpg.hpp"

#include <set>

namespace cpsinw::atpg {

using faults::BridgeFault;
using logic::LogicV;

BridgeTestResult generate_bridge_iddq_test(const logic::Circuit& ckt,
                                           const BridgeFault& fault,
                                           const PodemOptions& opt) {
  const PodemEngine engine(ckt);
  BridgeTestResult result;
  bool aborted = false;
  for (const LogicV va : {LogicV::k0, LogicV::k1}) {
    const AtpgResult r = engine.justify_net_values(
        {{fault.a, va}, {fault.b, logic_not(va)}}, opt);
    if (r.status == AtpgStatus::kDetected) {
      result.status = AtpgStatus::kDetected;
      result.pattern = r.pattern;
      return result;
    }
    if (r.status == AtpgStatus::kAborted) aborted = true;
  }
  result.status =
      aborted ? AtpgStatus::kAborted : AtpgStatus::kUntestable;
  return result;
}

BridgeCoverage generate_all_bridge_tests(const logic::Circuit& ckt,
                                         const PodemOptions& opt) {
  BridgeCoverage cov;
  // The IDDQ excitation does not depend on the behaviour model, so each
  // net pair is justified once and credits all four behaviours.
  std::set<std::pair<logic::NetId, logic::NetId>> tested;
  const std::vector<BridgeFault> universe =
      faults::enumerate_adjacent_bridges(ckt);
  cov.total = static_cast<int>(universe.size());
  for (const BridgeFault& f : universe) {
    const auto key = std::make_pair(std::min(f.a, f.b), std::max(f.a, f.b));
    if (tested.count(key) != 0) continue;
    tested.insert(key);
    const BridgeTestResult r = generate_bridge_iddq_test(ckt, f, opt);
    if (r.status != AtpgStatus::kDetected) continue;
    cov.iddq_patterns.push_back(*r.pattern);
    for (const BridgeFault& g : universe) {
      if (std::min(g.a, g.b) != key.first ||
          std::max(g.a, g.b) != key.second)
        continue;
      ++cov.iddq_covered;
      if (faults::bridge_detected_by_output(ckt, g, *r.pattern))
        ++cov.also_output_detectable;
    }
  }
  return cov;
}

}  // namespace cpsinw::atpg
