#include "atpg/transition.hpp"

#include <stdexcept>

#include "faults/fault_sim.hpp"

namespace cpsinw::atpg {

using logic::LogicV;
using logic::Pattern;

std::vector<TransitionFault> enumerate_transition_faults(
    const logic::Circuit& ckt) {
  std::vector<TransitionFault> out;
  for (logic::NetId n = 0; n < ckt.net_count(); ++n) {
    if (is_binary(ckt.constant_of(n))) continue;  // constants never switch
    out.push_back({n, true});
    out.push_back({n, false});
  }
  return out;
}

bool transition_detected(const logic::Circuit& ckt,
                         const TransitionFault& fault,
                         const Pattern& launch, const Pattern& capture) {
  if (fault.net < 0 || fault.net >= ckt.net_count())
    throw std::invalid_argument("transition_detected: bad net");
  const LogicV old_v = fault.old_value();

  // One context serves the launch/capture good values and the packed
  // verification below without re-simulating the good machine.
  const faults::EvalContext ctx(ckt, {launch, capture});

  // Launch must establish the pre-transition value...
  if (ctx.good(0).value(fault.net) != old_v) return false;
  // ...and capture must create the transition.
  if (ctx.good(1).value(fault.net) != logic_not(old_v)) return false;

  // Gross delay: the late net still holds the old value at capture time —
  // a temporary stuck-at that must reach a primary output.
  const faults::FaultSimulator fsim(ckt);
  return fsim.line_fault_detected(
      ctx, faults::Fault::net_stuck(fault.net, old_v == LogicV::k1), 1);
}

TransitionResult generate_transition_test(const logic::Circuit& ckt,
                                          const TransitionFault& fault,
                                          const PodemOptions& opt) {
  const PodemEngine engine(ckt);
  return generate_transition_test(engine, fault, opt);
}

TransitionResult generate_transition_test(const PodemEngine& engine,
                                          const TransitionFault& fault,
                                          const PodemOptions& opt) {
  const logic::Circuit& ckt = engine.circuit();
  if (fault.net < 0 || fault.net >= ckt.net_count())
    throw std::invalid_argument("generate_transition_test: bad net");
  TransitionResult result;

  // Capture: a stuck-at-(old value) test — it drives the net to the new
  // value in the good machine and propagates the old one.
  const LogicV old_v = fault.old_value();
  const AtpgResult capture = engine.generate_line(
      faults::Fault::net_stuck(fault.net, old_v == LogicV::k1), opt);
  if (capture.status != AtpgStatus::kDetected) {
    result.status = capture.status;
    return result;
  }
  // Launch: justify the pre-transition value.
  const AtpgResult launch = engine.justify_net_value(fault.net, old_v, opt);
  if (launch.status != AtpgStatus::kDetected) {
    result.status = launch.status;
    return result;
  }

  if (!transition_detected(ckt, fault, launch.pattern, capture.pattern)) {
    result.status = AtpgStatus::kUntestable;
    return result;
  }
  result.status = AtpgStatus::kDetected;
  result.test = TransitionTest{fault, launch.pattern, capture.pattern};
  return result;
}

TransitionCoverage generate_all_transition_tests(const logic::Circuit& ckt,
                                                 const PodemOptions& opt) {
  TransitionCoverage cov;
  // One engine for the whole sweep: the circuit is compiled and SCOAP
  // computed once, not once per transition fault.
  const PodemEngine engine(ckt);
  for (const TransitionFault& f : enumerate_transition_faults(ckt)) {
    ++cov.total;
    TransitionResult r = generate_transition_test(engine, f, opt);
    switch (r.status) {
      case AtpgStatus::kDetected:
        ++cov.detected;
        cov.tests.push_back(std::move(*r.test));
        break;
      case AtpgStatus::kUntestable: ++cov.untestable; break;
      case AtpgStatus::kAborted: ++cov.aborted; break;
    }
  }
  return cov;
}

}  // namespace cpsinw::atpg
