#include "atpg/compaction.hpp"

#include <algorithm>

namespace cpsinw::atpg {

CompactionResult compact_patterns(const logic::Circuit& ckt,
                                  const std::vector<faults::Fault>& faults,
                                  const std::vector<logic::Pattern>& patterns,
                                  const faults::FaultSimOptions& options) {
  const faults::FaultSimulator fsim(ckt);
  CompactionResult out;
  out.original_count = static_cast<int>(patterns.size());
  const faults::EvalContext before_ctx(ckt, patterns);
  out.coverage_before = fsim.run(before_ctx, faults, options).coverage();

  // Walk patterns in reverse; keep one iff it adds coverage over the kept
  // set so far.  (Reverse order works well because ATPG emits patterns for
  // hard faults last, and those often cover many easy faults.)
  std::vector<logic::Pattern> kept;
  std::vector<char> covered(faults.size(), 0);
  int covered_count = 0;
  for (auto it = patterns.rbegin(); it != patterns.rend(); ++it) {
    bool adds = false;
    const faults::EvalContext pattern_ctx(ckt, {*it});
    const faults::FaultSimReport rep = fsim.run(pattern_ctx, faults, options);
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (covered[fi]) continue;
      if (rep.records[fi].detected(options.observe_iddq)) {
        covered[fi] = 1;
        ++covered_count;
        adds = true;
      }
    }
    if (adds) kept.push_back(*it);
    if (covered_count == static_cast<int>(faults.size())) break;
  }
  std::reverse(kept.begin(), kept.end());
  out.patterns = std::move(kept);
  out.coverage_after = fsim.run(faults, out.patterns, options).coverage();
  return out;
}

}  // namespace cpsinw::atpg
