// Test-set compaction: reverse-order fault-simulation-based compaction
// (drop patterns that detect no not-yet-covered fault) for combinational
// test sets.
#pragma once

#include <vector>

#include "faults/fault_sim.hpp"

namespace cpsinw::atpg {

/// Result of a compaction pass.
struct CompactionResult {
  std::vector<logic::Pattern> patterns;  ///< the compacted set
  int original_count = 0;
  double coverage_before = 0.0;
  double coverage_after = 0.0;
};

/// Reverse-order compaction: simulate patterns last-to-first, keep a
/// pattern only if it detects at least one fault not detected by the
/// already-kept ones.  Coverage never decreases.
/// @param faults the fault universe to preserve coverage for
[[nodiscard]] CompactionResult compact_patterns(
    const logic::Circuit& ckt, const std::vector<faults::Fault>& faults,
    const std::vector<logic::Pattern>& patterns,
    const faults::FaultSimOptions& options = {});

}  // namespace cpsinw::atpg
