#include "atpg/channel_break.hpp"

#include <stdexcept>

namespace cpsinw::atpg {

using gates::CellKind;
using gates::DualRailBits;
using gates::SwitchEval;

namespace {

/// Applies the polarity-complement override for transistor `t` of the cell
/// to a consistent dual-rail assignment of `vector`, returning the rails
/// and the emulated fault kind.  The device's PG signal net (true or bar
/// rail of some input) is forced to equal the device's CG value so the
/// device is driven into conduction.
struct Override {
  DualRailBits rails;
  gates::TransistorFault emulated;
};

std::optional<Override> polarity_override(CellKind kind, int transistor,
                                          unsigned vector) {
  const gates::CellTemplate& tpl = gates::cell(kind);
  const gates::TransistorSpec& tr =
      tpl.transistors.at(static_cast<std::size_t>(transistor));

  const int n = gates::input_count(kind);
  DualRailBits rails = DualRailBits::consistent(vector, n);

  // CG value under this vector.
  int cg = -1;
  switch (tr.cg.kind) {
    case gates::Sig::Kind::kIn:
      cg = (rails.true_bits >> tr.cg.index) & 1u;
      break;
    case gates::Sig::Kind::kInBar:
      cg = (rails.bar_bits >> tr.cg.index) & 1u;
      break;
    default:
      return std::nullopt;  // CG tied to a rail: not a DP device
  }

  // Force the PG net toward the CG value (conduction requires CG = PG).
  const unsigned bit = 1u << tr.pg.index;
  switch (tr.pg.kind) {
    case gates::Sig::Kind::kIn:
      if (((rails.true_bits & bit) != 0) == (cg == 1))
        return std::nullopt;  // PG already matches: device conducts anyway
      if (cg == 1)
        rails.true_bits |= bit;
      else
        rails.true_bits &= ~bit;
      break;
    case gates::Sig::Kind::kInBar:
      if (((rails.bar_bits & bit) != 0) == (cg == 1))
        return std::nullopt;
      if (cg == 1)
        rails.bar_bits |= bit;
      else
        rails.bar_bits &= ~bit;
      break;
    default:
      return std::nullopt;  // PG tied to a rail: SP device
  }

  Override o;
  o.rails = rails;
  o.emulated = cg == 1 ? gates::TransistorFault::kStuckAtNType
                       : gates::TransistorFault::kStuckAtPType;
  return o;
}

/// Observable signature of a switch-level response.
CbSignature signature_of(const SwitchEval& eval) {
  return {gates::logic_value(eval.out), eval.contention};
}

/// Whether a signature is a fault symptom relative to the good output.
bool is_symptom(CellKind kind, unsigned vector, const CbSignature& sig) {
  return sig.iddq ||
         sig.out_read != gates::good_output(kind, vector);
}

/// Evaluates one candidate assignment; returns the test when intact and
/// broken responses differ.
std::optional<ChannelBreakTest> try_vector(CellKind kind, int transistor,
                                           unsigned v,
                                           bool require_clean_broken) {
  const auto ov = polarity_override(kind, transistor, v);
  if (!ov) return std::nullopt;

  const SwitchEval intact = gates::eval_switch_dual(kind, ov->rails);
  const SwitchEval broken = gates::eval_switch_dual(
      kind, ov->rails, {transistor, gates::TransistorFault::kStuckOpen});
  const CbSignature si = signature_of(intact);
  const CbSignature sb = signature_of(broken);
  if (si == sb) return std::nullopt;
  if (!is_symptom(kind, v, si)) return std::nullopt;
  const bool clean = !is_symptom(kind, v, sb);
  if (require_clean_broken && !clean) return std::nullopt;

  ChannelBreakTest test;
  test.transistor = transistor;
  test.emulated_polarity = ov->emulated;
  test.local_vector = v;
  test.rails = ov->rails;
  test.expected_intact = si;
  test.expected_broken = sb;
  test.broken_is_clean = clean;
  test.intact_shows_iddq = si.iddq;
  test.intact_shows_output_error =
      si.out_read != gates::good_output(kind, v);
  return test;
}

}  // namespace

std::optional<ChannelBreakTest> derive_cell_test(CellKind kind,
                                                 int transistor) {
  if (!gates::is_dynamic_polarity(kind)) return std::nullopt;
  const int n = gates::input_count(kind);
  const int nt =
      static_cast<int>(gates::cell(kind).transistors.size());
  if (transistor < 0 || transistor >= nt)
    throw std::invalid_argument("derive_cell_test: transistor index");

  // Prefer the paper's canonical form (intact symptomatic, broken clean);
  // fall back to any separating signature pair.
  for (const bool require_clean : {true, false}) {
    for (unsigned v = 0; v < (1u << n); ++v) {
      auto test = try_vector(kind, transistor, v, require_clean);
      if (test) return test;
    }
  }
  return std::nullopt;
}

ChannelBreakOutcome evaluate_cell_test(CellKind kind,
                                       const ChannelBreakTest& test) {
  ChannelBreakOutcome out;
  const SwitchEval intact = gates::eval_switch_dual(kind, test.rails);
  const SwitchEval broken = gates::eval_switch_dual(
      kind, test.rails,
      {test.transistor, gates::TransistorFault::kStuckOpen});
  out.intact = signature_of(intact);
  out.broken = signature_of(broken);
  return out;
}

std::vector<ChannelBreakTest> generate_channel_break_tests(
    const logic::Circuit& ckt, const PodemOptions& opt) {
  const PodemEngine engine(ckt);
  std::vector<ChannelBreakTest> out;
  for (const logic::GateInst& g : ckt.gates()) {
    if (!gates::is_dynamic_polarity(g.kind)) continue;
    const int nt =
        static_cast<int>(gates::cell(g.kind).transistors.size());
    for (int t = 0; t < nt; ++t) {
      auto test = derive_cell_test(g.kind, t);
      if (!test) continue;
      test->gate = g.id;
      bool pi_fed = true;
      for (int i = 0; i < g.input_count(); ++i)
        if (!ckt.is_primary_input(g.in[static_cast<std::size_t>(i)]))
          pi_fed = false;
      test->pi_accessible = pi_fed;
      const AtpgResult just =
          engine.justify_gate_cube(g.id, test->local_vector, opt);
      if (just.status == AtpgStatus::kDetected) test->pattern = just.pattern;
      out.push_back(*test);
    }
  }
  return out;
}

}  // namespace cpsinw::atpg
