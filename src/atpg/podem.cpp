#include "atpg/podem.hpp"

#include <algorithm>
#include <stdexcept>

#include "gates/dictionary_cache.hpp"
#include "gates/fault_dictionary.hpp"

namespace cpsinw::atpg {

using faults::Fault;
using faults::FaultSite;
using logic::LogicV;
using logic::NetId;

const char* to_string(AtpgStatus status) {
  switch (status) {
    case AtpgStatus::kDetected: return "detected";
    case AtpgStatus::kUntestable: return "untestable";
    case AtpgStatus::kAborted: return "aborted";
  }
  return "?";
}

const char* to_string(const V5& v) {
  if (v.is_d()) return "D";
  if (v.is_dbar()) return "D'";
  if (v.good == LogicV::k0 && v.faulty == LogicV::k0) return "0";
  if (v.good == LogicV::k1 && v.faulty == LogicV::k1) return "1";
  if (v.good == LogicV::kX && v.faulty == LogicV::kX) return "X";
  return "g/f";
}

namespace {

/// Internal description of the faulty machine plus the search target.
struct Target {
  // Line fault (stem or branch).
  bool line = false;
  NetId line_net = -1;       ///< stem net, or the net feeding the branch
  int line_gate = -1;        ///< branch: consuming gate
  int line_pin = -1;         ///< branch: pin index
  LogicV stuck = LogicV::k0;

  // Functional gate fault.
  bool functional = false;
  int func_gate = -1;
  const gates::FaultAnalysis* dictionary = nullptr;

  // Excitation cube to justify at `cube_gate` (functional and
  // justification-only modes).
  int cube_gate = -1;
  unsigned cube = 0;

  // Justification-only: success once the cube is justified.
  bool justify_only = false;

  // Net justification targets (alternative to cube_gate).
  std::vector<std::pair<NetId, LogicV>> justify_nets;

  // Two-pattern mode: value a floating faulty output retains (set by the
  // initialization vector); kX outside two-pattern generation.
  logic::LogicV retained = logic::LogicV::kX;
};

class Solver {
 public:
  Solver(const logic::Circuit& ckt, const logic::CompiledCircuit& cc,
         Target target, const PodemOptions& opt,
         const std::vector<Testability>* scoap)
      : ckt_(ckt), cc_(cc), target_(target), opt_(opt), scoap_(scoap) {
    pi_assign_.assign(ckt.primary_inputs().size(), LogicV::kX);
    values_.assign(static_cast<std::size_t>(ckt.net_count()), V5::x());
    // Constant nets never change across implications: seed them once and
    // copy the baseline per imply() instead of re-reading the circuit.
    base_.assign(static_cast<std::size_t>(ckt.net_count()), V5::x());
    for (NetId n = 0; n < ckt.net_count(); ++n) {
      const LogicV c = ckt.constant_of(n);
      if (is_binary(c)) base_[static_cast<std::size_t>(n)] = V5::both(c);
    }
  }

  AtpgResult run() {
    AtpgResult result;
    struct Decision {
      int pi;
      bool flipped;
    };
    std::vector<Decision> stack;

    while (true) {
      imply();
      if (success()) {
        result.status = AtpgStatus::kDetected;
        result.pattern = make_pattern();
        result.backtracks = backtracks_;
        if (target_.cube_gate >= 0) result.excited_cube = target_.cube;
        return result;
      }

      int obj_pi = -1;
      LogicV obj_val = LogicV::kX;
      const bool can_extend =
          !failure() && next_objective(obj_pi, obj_val);

      if (can_extend) {
        pi_assign_[static_cast<std::size_t>(obj_pi)] = obj_val;
        stack.push_back({obj_pi, false});
        continue;
      }

      // Backtrack.
      bool resumed = false;
      while (!stack.empty()) {
        Decision& top = stack.back();
        if (!top.flipped) {
          top.flipped = true;
          LogicV& v = pi_assign_[static_cast<std::size_t>(top.pi)];
          v = v == LogicV::k0 ? LogicV::k1 : LogicV::k0;
          if (++backtracks_ > opt_.backtrack_limit) {
            result.status = AtpgStatus::kAborted;
            result.backtracks = backtracks_;
            return result;
          }
          resumed = true;
          break;
        }
        pi_assign_[static_cast<std::size_t>(top.pi)] = LogicV::kX;
        stack.pop_back();
      }
      if (!resumed) {
        result.status = AtpgStatus::kUntestable;
        result.backtracks = backtracks_;
        return result;
      }
    }
  }

 private:
  [[nodiscard]] V5 net_value(NetId n) const {
    return values_[static_cast<std::size_t>(n)];
  }

  void imply() {
    using logic::CompiledCircuit;
    values_ = base_;
    const auto& pis = ckt_.primary_inputs();
    for (std::size_t i = 0; i < pis.size(); ++i)
      values_[static_cast<std::size_t>(pis[i])] = V5::both(pi_assign_[i]);

    // Stem fault forces the faulty component of the net everywhere.
    if (target_.line && target_.line_gate < 0)
      values_[static_cast<std::size_t>(target_.line_net)].faulty =
          target_.stuck;

    // Forward implication off the compiled records: both the good and the
    // faulty component come from the levelized 4-valued tables (unused
    // pins alias slot 0, whose code the tables ignore).
    for (const CompiledCircuit::GateRec& g : cc_.gates()) {
      V5 in_v[3] = {values_[static_cast<std::size_t>(g.in[0])],
                    values_[static_cast<std::size_t>(g.in[1])],
                    values_[static_cast<std::size_t>(g.in[2])]};
      // Branch fault: only this gate's pin sees the forced value.
      if (target_.line && target_.line_gate == g.id)
        in_v[target_.line_pin].faulty = target_.stuck;

      V5 out;
      out.good = g.table[CompiledCircuit::code(in_v[0].good) |
                         (CompiledCircuit::code(in_v[1].good) << 2) |
                         (CompiledCircuit::code(in_v[2].good) << 4)];
      if (target_.functional && target_.func_gate == g.id) {
        out.faulty = faulty_gate_output(in_v, g.n_in);
      } else {
        out.faulty = g.table[CompiledCircuit::code(in_v[0].faulty) |
                             (CompiledCircuit::code(in_v[1].faulty) << 2) |
                             (CompiledCircuit::code(in_v[2].faulty) << 4)];
      }
      values_[static_cast<std::size_t>(g.out)] = out;
      if (target_.line && target_.line_gate < 0 &&
          g.out == target_.line_net)
        values_[static_cast<std::size_t>(g.out)].faulty = target_.stuck;
    }
  }

  /// Faulty output of the functional-faulted gate from its dictionary;
  /// needs binary faulty-side local inputs.
  [[nodiscard]] LogicV faulty_gate_output(const V5 in_v[3],
                                          unsigned n_in) const {
    unsigned bits = 0;
    for (unsigned i = 0; i < n_in; ++i) {
      if (!is_binary(in_v[i].faulty)) return LogicV::kX;
      if (in_v[i].faulty == LogicV::k1) bits |= 1u << i;
    }
    const int fv = target_.dictionary->faulty_logic(bits);
    if (fv == 0) return LogicV::k0;
    if (fv == 1) return LogicV::k1;
    if (fv == -2) return target_.retained;  // floating: retained charge
    return LogicV::kX;                      // marginal
  }

  [[nodiscard]] bool cube_justified() const {
    const logic::GateInst& g = ckt_.gate(target_.cube_gate);
    for (int i = 0; i < g.input_count(); ++i) {
      const LogicV v =
          net_value(g.in[static_cast<std::size_t>(i)]).good;
      const LogicV want =
          ((target_.cube >> i) & 1u) ? LogicV::k1 : LogicV::k0;
      if (v != want) return false;
    }
    return true;
  }

  [[nodiscard]] bool cube_dead() const {
    const logic::GateInst& g = ckt_.gate(target_.cube_gate);
    for (int i = 0; i < g.input_count(); ++i) {
      const LogicV v =
          net_value(g.in[static_cast<std::size_t>(i)]).good;
      const LogicV want =
          ((target_.cube >> i) & 1u) ? LogicV::k1 : LogicV::k0;
      if (is_binary(v) && v != want) return true;
    }
    return false;
  }

  [[nodiscard]] bool success() const {
    if (target_.justify_only) {
      if (!target_.justify_nets.empty()) {
        for (const auto& [net, value] : target_.justify_nets)
          if (net_value(net).good != value) return false;
        return true;
      }
      return cube_justified();
    }
    for (const NetId po : ckt_.primary_outputs())
      if (net_value(po).is_fault_effect()) return true;
    return false;
  }

  [[nodiscard]] bool excitation_possible() const {
    if (target_.line) {
      const LogicV good = net_value(target_.line_net).good;
      return !(is_binary(good) && good == target_.stuck);
    }
    if (target_.functional) return !cube_dead();
    return true;
  }

  [[nodiscard]] bool fault_effect_exists() const {
    for (NetId n = 0; n < ckt_.net_count(); ++n)
      if (net_value(n).is_fault_effect()) return true;
    return false;
  }

  /// D-frontier: gates with a fault effect on an input (or the excited
  /// fault site itself) whose output is still X on either side.
  [[nodiscard]] std::vector<int> d_frontier() const {
    std::vector<int> frontier;
    for (const logic::GateInst& g : ckt_.gates()) {
      const V5 out = net_value(g.out);
      if (is_binary(out.good) && is_binary(out.faulty)) continue;
      bool candidate = false;
      for (int i = 0; i < g.input_count(); ++i)
        if (net_value(g.in[static_cast<std::size_t>(i)]).is_fault_effect())
          candidate = true;
      if (target_.functional && g.id == target_.func_gate && cube_justified())
        candidate = true;
      if (target_.line && g.id == target_.line_gate) {
        const LogicV good = net_value(target_.line_net).good;
        if (is_binary(good) && good != target_.stuck) candidate = true;
      }
      if (candidate) frontier.push_back(g.id);
    }
    if (scoap_ != nullptr && frontier.size() > 1) {
      std::stable_sort(frontier.begin(), frontier.end(),
                       [&](int a, int b) {
                         const auto& sa = (*scoap_)[static_cast<std::size_t>(
                             ckt_.gate(a).out)];
                         const auto& sb = (*scoap_)[static_cast<std::size_t>(
                             ckt_.gate(b).out)];
                         return sa.obs < sb.obs;
                       });
    }
    return frontier;
  }

  [[nodiscard]] bool failure() const {
    if (target_.justify_only) {
      if (!target_.justify_nets.empty()) {
        for (const auto& [net, value] : target_.justify_nets) {
          const LogicV v = net_value(net).good;
          if (is_binary(v) && v != value) return true;
        }
        return false;
      }
      return cube_dead();
    }
    if (!excitation_possible()) return true;
    if (fault_effect_exists()) {
      if (success()) return false;
      if (d_frontier().empty()) return true;
    }
    return false;
  }

  /// Picks the next objective and backtraces it to a PI assignment.
  /// Returns false when no useful unassigned PI can be found.
  bool next_objective(int& pi_index, LogicV& pi_value) const {
    NetId obj_net = -1;
    LogicV obj_val = LogicV::kX;

    if (!target_.justify_nets.empty()) {
      for (const auto& [net, value] : target_.justify_nets) {
        if (net_value(net).good == LogicV::kX) {
          obj_net = net;
          obj_val = value;
          break;
        }
      }
    } else if (target_.cube_gate >= 0 && !cube_justified()) {
      const logic::GateInst& g = ckt_.gate(target_.cube_gate);
      for (int i = 0; i < g.input_count(); ++i) {
        const NetId n = g.in[static_cast<std::size_t>(i)];
        if (net_value(n).good == LogicV::kX) {
          obj_net = n;
          obj_val = ((target_.cube >> i) & 1u) ? LogicV::k1 : LogicV::k0;
          break;
        }
      }
    } else if (target_.line && net_value(target_.line_net).good ==
                                   LogicV::kX) {
      obj_net = target_.line_net;
      obj_val = target_.stuck == LogicV::k0 ? LogicV::k1 : LogicV::k0;
    } else if (!target_.justify_only) {
      // Propagation: pick the first D-frontier gate and feed it a
      // non-masking side value.
      const auto frontier = d_frontier();
      for (const int gid : frontier) {
        const logic::GateInst& g = ckt_.gate(gid);
        for (int i = 0; i < g.input_count(); ++i) {
          const NetId n = g.in[static_cast<std::size_t>(i)];
          if (net_value(n).good != LogicV::kX) continue;
          obj_net = n;
          obj_val = preferred_side_value(g, i);
          break;
        }
        if (obj_net >= 0) break;
      }
    }
    if (obj_net < 0) return false;
    return backtrace(obj_net, obj_val, pi_index, pi_value);
  }

  /// Non-masking side-input value for propagating through `g`.
  [[nodiscard]] LogicV preferred_side_value(const logic::GateInst& g,
                                            int pin) const {
    switch (g.kind) {
      case gates::CellKind::kNand2: return LogicV::k1;
      case gates::CellKind::kNor2: return LogicV::k0;
      case gates::CellKind::kMaj3: {
        // MAJ passes a D on one pin when the other two pins disagree.
        for (int i = 0; i < g.input_count(); ++i) {
          if (i == pin) continue;
          const LogicV v =
              net_value(g.in[static_cast<std::size_t>(i)]).good;
          if (is_binary(v)) return logic_not(v);
        }
        return LogicV::k1;
      }
      default: return LogicV::k0;  // XOR family: any side value works
    }
  }

  /// Maps an objective back to an unassigned primary input.
  bool backtrace(NetId net, LogicV value, int& pi_index,
                 LogicV& pi_value) const {
    for (int hop = 0; hop < ckt_.net_count() + 1; ++hop) {
      if (ckt_.is_primary_input(net)) {
        const auto& pis = ckt_.primary_inputs();
        for (std::size_t i = 0; i < pis.size(); ++i) {
          if (pis[i] != net) continue;
          if (pi_assign_[i] != LogicV::kX) return false;  // already set
          pi_index = static_cast<int>(i);
          pi_value = value;
          return true;
        }
        return false;
      }
      const int drv = ckt_.driver_of(net);
      if (drv < 0) return false;  // constant: cannot justify
      const logic::GateInst& g = ckt_.gate(drv);

      int pick = -1;
      long long best_cost = -1;
      for (int i = 0; i < g.input_count(); ++i) {
        const NetId cand = g.in[static_cast<std::size_t>(i)];
        if (net_value(cand).good != LogicV::kX) continue;
        long long cost = 0;
        if (scoap_ != nullptr) {
          const Testability& tc = (*scoap_)[static_cast<std::size_t>(cand)];
          cost = std::min(tc.cc0, tc.cc1);
        }
        if (pick < 0 || cost < best_cost) {
          pick = i;
          best_cost = cost;
        }
      }
      if (pick < 0) return false;

      switch (g.kind) {
        case gates::CellKind::kInv:
          value = logic_not(value);
          break;
        case gates::CellKind::kBuf:
          break;
        case gates::CellKind::kNand2:
          value = value == LogicV::k1 ? LogicV::k0 : LogicV::k1;
          break;
        case gates::CellKind::kNor2:
          value = value == LogicV::k1 ? LogicV::k0 : LogicV::k1;
          break;
        case gates::CellKind::kXor2:
        case gates::CellKind::kXor3: {
          // value = want XOR (parity of other known inputs).
          int parity = 0;
          for (int i = 0; i < g.input_count(); ++i) {
            if (i == pick) continue;
            if (net_value(g.in[static_cast<std::size_t>(i)]).good ==
                LogicV::k1)
              parity ^= 1;
          }
          if (parity) value = logic_not(value);
          break;
        }
        case gates::CellKind::kMaj3:
          break;  // want v -> drive an input toward v
      }
      net = g.in[static_cast<std::size_t>(pick)];
    }
    return false;
  }

  logic::Pattern make_pattern() const {
    logic::Pattern p(pi_assign_.size());
    for (std::size_t i = 0; i < pi_assign_.size(); ++i)
      p[i] = pi_assign_[i] == LogicV::kX ? LogicV::k0 : pi_assign_[i];
    return p;
  }

  const logic::Circuit& ckt_;
  const logic::CompiledCircuit& cc_;
  Target target_;
  PodemOptions opt_;
  const std::vector<Testability>* scoap_ = nullptr;
  std::vector<LogicV> pi_assign_;
  std::vector<V5> values_;
  std::vector<V5> base_;  ///< constants seeded, everything else X
  int backtracks_ = 0;
};

}  // namespace

namespace {

const logic::Circuit& require_finalized(const logic::Circuit& ckt) {
  if (!ckt.finalized())
    throw std::invalid_argument("PodemEngine: circuit not finalized");
  return ckt;
}

}  // namespace

PodemEngine::PodemEngine(const logic::Circuit& ckt)
    : ckt_(ckt), cc_(require_finalized(ckt)) {
  scoap_ = compute_scoap(ckt);
}

AtpgResult PodemEngine::generate_line(const Fault& fault,
                                      const PodemOptions& opt) const {
  if (fault.site == FaultSite::kGateTransistor)
    throw std::invalid_argument("generate_line: transistor fault");
  Target t;
  t.line = true;
  t.stuck = fault.stuck_at_one ? LogicV::k1 : LogicV::k0;
  if (fault.site == FaultSite::kNet) {
    t.line_net = fault.net;
  } else {
    t.line_gate = fault.gate;
    t.line_pin = fault.pin;
    t.line_net = ckt_.gate(fault.gate)
                     .in[static_cast<std::size_t>(fault.pin)];
  }
  return Solver(ckt_, cc_, t, opt, &scoap_).run();
}

AtpgResult PodemEngine::generate_functional(const Fault& fault,
                                            const PodemOptions& opt) const {
  if (fault.site != FaultSite::kGateTransistor)
    throw std::invalid_argument("generate_functional: not a transistor fault");
  const gates::FaultAnalysis& fa = gates::DictionaryCache::global().lookup(
      ckt_.gate(fault.gate).kind, fault.cell_fault);

  AtpgResult last;
  bool any_aborted = false;
  for (const gates::FaultRow& row : fa.rows) {
    if (gates::classify_row(row) != gates::RowEffect::kWrongValue) continue;
    Target t;
    t.functional = true;
    t.func_gate = fault.gate;
    t.dictionary = &fa;
    t.cube_gate = fault.gate;
    t.cube = row.input;
    last = Solver(ckt_, cc_, t, opt, &scoap_).run();
    if (last.status == AtpgStatus::kDetected) return last;
    if (last.status == AtpgStatus::kAborted) any_aborted = true;
  }
  last.status = any_aborted ? AtpgStatus::kAborted : AtpgStatus::kUntestable;
  last.pattern.clear();
  return last;
}

AtpgResult PodemEngine::generate_iddq(const Fault& fault,
                                      const PodemOptions& opt) const {
  if (fault.site != FaultSite::kGateTransistor)
    throw std::invalid_argument("generate_iddq: not a transistor fault");
  const gates::FaultAnalysis& fa = gates::DictionaryCache::global().lookup(
      ckt_.gate(fault.gate).kind, fault.cell_fault);

  AtpgResult last;
  bool any_aborted = false;
  for (const gates::FaultRow& row : fa.rows) {
    if (!row.faulty.contention) continue;
    last = justify_gate_cube(fault.gate, row.input, opt);
    if (last.status == AtpgStatus::kDetected) {
      last.excited_cube = row.input;
      return last;
    }
    if (last.status == AtpgStatus::kAborted) any_aborted = true;
  }
  last.status = any_aborted ? AtpgStatus::kAborted : AtpgStatus::kUntestable;
  last.pattern.clear();
  return last;
}

AtpgResult PodemEngine::generate_functional_retained(
    const Fault& fault, unsigned cube, bool good_is_one,
    const PodemOptions& opt) const {
  if (fault.site != FaultSite::kGateTransistor)
    throw std::invalid_argument(
        "generate_functional_retained: not a transistor fault");
  const gates::FaultAnalysis& fa = gates::DictionaryCache::global().lookup(
      ckt_.gate(fault.gate).kind, fault.cell_fault);
  Target t;
  t.functional = true;
  t.func_gate = fault.gate;
  t.dictionary = &fa;
  t.cube_gate = fault.gate;
  t.cube = cube;
  t.retained = good_is_one ? LogicV::k0 : LogicV::k1;
  return Solver(ckt_, cc_, t, opt, &scoap_).run();
}

AtpgResult PodemEngine::justify_net_value(logic::NetId net,
                                          logic::LogicV value,
                                          const PodemOptions& opt) const {
  return justify_net_values({{net, value}}, opt);
}

AtpgResult PodemEngine::justify_net_values(
    const std::vector<std::pair<logic::NetId, logic::LogicV>>& goals,
    const PodemOptions& opt) const {
  if (goals.empty())
    throw std::invalid_argument("justify_net_values: no goals");
  for (const auto& [net, value] : goals) {
    if (net < 0 || net >= ckt_.net_count())
      throw std::invalid_argument("justify_net_values: bad net id");
    if (!is_binary(value))
      throw std::invalid_argument("justify_net_values: value must be binary");
  }
  Target t;
  t.justify_only = true;
  t.justify_nets = goals;
  return Solver(ckt_, cc_, t, opt, &scoap_).run();
}

AtpgResult PodemEngine::justify_gate_cube(int gate, unsigned cube,
                                          const PodemOptions& opt) const {
  if (gate < 0 || gate >= ckt_.gate_count())
    throw std::invalid_argument("justify_gate_cube: bad gate id");
  Target t;
  t.justify_only = true;
  t.cube_gate = gate;
  t.cube = cube;
  return Solver(ckt_, cc_, t, opt, &scoap_).run();
}

}  // namespace cpsinw::atpg
