#include "atpg/two_pattern.hpp"

#include <stdexcept>

#include "gates/dictionary_cache.hpp"

namespace cpsinw::atpg {

using faults::Fault;
using faults::FaultSite;

TwoPatternResult generate_two_pattern(const logic::Circuit& ckt,
                                      const Fault& fault,
                                      const PodemOptions& opt) {
  const PodemEngine engine(ckt);
  const faults::FaultSimulator fsim(ckt);
  return generate_two_pattern(engine, fsim, fault, opt);
}

TwoPatternResult generate_two_pattern(const PodemEngine& engine,
                                      const faults::FaultSimulator& fsim,
                                      const Fault& fault,
                                      const PodemOptions& opt) {
  if (fault.site != FaultSite::kGateTransistor ||
      fault.cell_fault.kind != gates::TransistorFault::kStuckOpen)
    throw std::invalid_argument(
        "generate_two_pattern: needs a transistor stuck-open fault");

  const logic::Circuit& ckt = engine.circuit();
  const logic::GateInst& g = ckt.gate(fault.gate);
  const gates::FaultAnalysis& fa =
      gates::DictionaryCache::global().lookup(g.kind, fault.cell_fault);

  TwoPatternResult result;
  bool any_aborted = false;

  for (const gates::FaultRow& row2 : fa.rows) {
    if (!row2.faulty.floating) continue;  // v2 must float the output
    const unsigned v2 = row2.input;
    const int o2 = row2.good;

    for (const gates::FaultRow& row1 : fa.rows) {
      // v1 must drive the *opposite* value correctly in the faulty machine.
      if (row1.good == o2) continue;
      const int fv1 = fa.faulty_logic(row1.input);
      if (fv1 != row1.good) continue;

      ++result.attempts;
      // Justify v1 (initialization only; no propagation needed) and v2
      // with D propagation to a PO: the faulty output retains !o2 while
      // the good machine produces o2.
      const AtpgResult r1 =
          engine.justify_gate_cube(fault.gate, row1.input, opt);
      if (r1.status == AtpgStatus::kAborted) any_aborted = true;
      if (r1.status != AtpgStatus::kDetected) continue;

      const AtpgResult r2 = engine.generate_functional_retained(
          fault, v2, o2 != 0, opt);
      if (r2.status == AtpgStatus::kAborted) any_aborted = true;
      if (r2.status != AtpgStatus::kDetected) continue;

      // Independent verification with retention-aware fault simulation.
      if (!fsim.stuck_open_detected(fault, r1.pattern, r2.pattern)) continue;

      TwoPatternTest test;
      test.fault = fault;
      test.init = r1.pattern;
      test.test = r2.pattern;
      test.init_cube = row1.input;
      test.test_cube = v2;
      result.status = AtpgStatus::kDetected;
      result.test = test;
      return result;
    }
  }
  result.status =
      any_aborted ? AtpgStatus::kAborted : AtpgStatus::kUntestable;
  return result;
}

std::vector<TwoPatternResult> generate_all_stuck_open_tests(
    const logic::Circuit& ckt, const PodemOptions& opt) {
  std::vector<TwoPatternResult> out;
  // One engine + fault simulator for the whole sweep: the circuit is
  // compiled and SCOAP computed once, not once per stuck-open fault.
  const PodemEngine engine(ckt);
  const faults::FaultSimulator fsim(ckt);
  for (const logic::GateInst& g : ckt.gates()) {
    const int nt = static_cast<int>(gates::cell(g.kind).transistors.size());
    for (int t = 0; t < nt; ++t) {
      out.push_back(generate_two_pattern(
          engine, fsim,
          Fault::transistor(g.id, t, gates::TransistorFault::kStuckOpen),
          opt));
    }
  }
  return out;
}

}  // namespace cpsinw::atpg
