// SCOAP-style testability measures: combinational 0/1-controllability and
// observability per net.  Used to guide PODEM's backtrace (choose the
// cheapest input to justify an objective) and exported for testability
// reporting.
#pragma once

#include <vector>

#include "logic/circuit.hpp"

namespace cpsinw::atpg {

/// Testability numbers of one net (SCOAP convention: PIs cost 1; every
/// gate traversal adds 1; larger = harder).
struct Testability {
  int cc0 = 0;  ///< cost of setting the net to 0
  int cc1 = 0;  ///< cost of setting the net to 1
  int obs = 0;  ///< cost of observing the net at a primary output
};

/// Computes SCOAP measures for every net of a finalized circuit.
/// @throws std::invalid_argument when the circuit is not finalized
[[nodiscard]] std::vector<Testability> compute_scoap(
    const logic::Circuit& ckt);

/// Controllability of value v (0/1) on a net.
[[nodiscard]] inline int controllability(const Testability& t, int v) {
  return v == 0 ? t.cc0 : t.cc1;
}

}  // namespace cpsinw::atpg
