// Composite good/faulty values for test generation (Roth's 5-valued
// calculus: 0, 1, X, D = 1/0, D-bar = 0/1), represented as a pair of
// 4-valued components.
#pragma once

#include "logic/types.hpp"

namespace cpsinw::atpg {

/// Composite circuit value: the good-machine and faulty-machine components.
struct V5 {
  logic::LogicV good = logic::LogicV::kX;
  logic::LogicV faulty = logic::LogicV::kX;

  [[nodiscard]] bool operator==(const V5&) const = default;

  /// D: good 1, faulty 0.
  [[nodiscard]] bool is_d() const {
    return good == logic::LogicV::k1 && faulty == logic::LogicV::k0;
  }
  /// D-bar: good 0, faulty 1.
  [[nodiscard]] bool is_dbar() const {
    return good == logic::LogicV::k0 && faulty == logic::LogicV::k1;
  }
  /// Fault effect present (D or D-bar).
  [[nodiscard]] bool is_fault_effect() const { return is_d() || is_dbar(); }
  /// Both components defined and equal.
  [[nodiscard]] bool is_definite_equal() const {
    return is_binary(good) && good == faulty;
  }

  [[nodiscard]] static V5 zero() {
    return {logic::LogicV::k0, logic::LogicV::k0};
  }
  [[nodiscard]] static V5 one() {
    return {logic::LogicV::k1, logic::LogicV::k1};
  }
  [[nodiscard]] static V5 x() { return {}; }
  [[nodiscard]] static V5 d() {
    return {logic::LogicV::k1, logic::LogicV::k0};
  }
  [[nodiscard]] static V5 dbar() {
    return {logic::LogicV::k0, logic::LogicV::k1};
  }
  [[nodiscard]] static V5 both(logic::LogicV v) { return {v, v}; }
};

/// Display string ("0", "1", "X", "D", "D'", or "g/f" for mixed states).
[[nodiscard]] const char* to_string(const V5& v);

}  // namespace cpsinw::atpg
