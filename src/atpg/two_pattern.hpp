// Two-pattern test generation for stuck-open (channel-break) faults in
// Static-Polarity gates (paper Sec. V-C): the first vector initializes the
// gate output, the second would switch it through the broken device — the
// output floats and retains the wrong value.
//
// Tests are non-robust (hazards are not analyzed); every generated pair is
// verified by sequential fault simulation before being reported.
#pragma once

#include <optional>
#include <vector>

#include "atpg/podem.hpp"
#include "faults/fault_sim.hpp"

namespace cpsinw::atpg {

/// A verified two-pattern stuck-open test.
struct TwoPatternTest {
  faults::Fault fault;
  logic::Pattern init;    ///< v1: initialization vector
  logic::Pattern test;    ///< v2: excitation/observation vector
  unsigned init_cube = 0; ///< local gate vector of v1
  unsigned test_cube = 0; ///< local gate vector of v2
};

/// Result for one fault.
struct TwoPatternResult {
  AtpgStatus status = AtpgStatus::kUntestable;
  std::optional<TwoPatternTest> test;
  int attempts = 0;
};

/// Generates a verified two-pattern test for a stuck-open fault.
/// @throws std::invalid_argument when the fault is not a transistor
///   stuck-open
[[nodiscard]] TwoPatternResult generate_two_pattern(
    const logic::Circuit& ckt, const faults::Fault& fault,
    const PodemOptions& opt = {});

/// As above, against caller-owned engines: the whole-circuit sweep
/// compiles the circuit and computes SCOAP once instead of per fault.
/// Both must be bound to the same circuit.
[[nodiscard]] TwoPatternResult generate_two_pattern(
    const PodemEngine& engine, const faults::FaultSimulator& fsim,
    const faults::Fault& fault, const PodemOptions& opt = {});

/// Generates two-pattern tests for every stuck-open fault of the circuit;
/// returns one entry per fault in enumeration order.
[[nodiscard]] std::vector<TwoPatternResult> generate_all_stuck_open_tests(
    const logic::Circuit& ckt, const PodemOptions& opt = {});

}  // namespace cpsinw::atpg
