#include "atpg/scoap.hpp"

#include <algorithm>
#include <stdexcept>

namespace cpsinw::atpg {

namespace {
constexpr int kInf = 1 << 28;
}

std::vector<Testability> compute_scoap(const logic::Circuit& ckt) {
  if (!ckt.finalized())
    throw std::invalid_argument("compute_scoap: circuit not finalized");

  std::vector<Testability> t(static_cast<std::size_t>(ckt.net_count()),
                             Testability{kInf, kInf, kInf});

  for (const logic::NetId n : ckt.primary_inputs()) {
    t[static_cast<std::size_t>(n)].cc0 = 1;
    t[static_cast<std::size_t>(n)].cc1 = 1;
  }
  for (logic::NetId n = 0; n < ckt.net_count(); ++n) {
    const logic::LogicV c = ckt.constant_of(n);
    if (c == logic::LogicV::k0) t[static_cast<std::size_t>(n)].cc0 = 0;
    if (c == logic::LogicV::k1) t[static_cast<std::size_t>(n)].cc1 = 0;
  }

  // Controllability: classic SCOAP composition generalized to arbitrary
  // cells via ternary cubes — CC(out = val) = 1 + min over input cubes
  // that *imply* val of the summed controllabilities of the specified
  // literals (don't-care inputs cost nothing, e.g. NAND out=1 needs only
  // one controlling 0).
  for (const int gid : ckt.topo_order()) {
    const logic::GateInst& g = ckt.gate(gid);
    const int n_in = g.input_count();
    int best[2] = {kInf, kInf};
    // Ternary cube encoding: digit i of `cube` in base 3 is
    // 0 -> input i = 0, 1 -> input i = 1, 2 -> don't care.
    int n_cubes = 1;
    for (int i = 0; i < n_in; ++i) n_cubes *= 3;
    for (int cube = 0; cube < n_cubes; ++cube) {
      int digits[3] = {2, 2, 2};
      int rest = cube;
      for (int i = 0; i < n_in; ++i) {
        digits[i] = rest % 3;
        rest /= 3;
      }
      // Does the cube imply a constant output?
      int implied = -1;
      bool constant = true;
      for (unsigned v = 0; v < (1u << n_in) && constant; ++v) {
        bool compatible = true;
        for (int i = 0; i < n_in; ++i) {
          const unsigned bit = (v >> i) & 1u;
          if (digits[i] != 2 && bit != static_cast<unsigned>(digits[i]))
            compatible = false;
        }
        if (!compatible) continue;
        const int out_v = gates::good_output(g.kind, v);
        if (implied < 0) implied = out_v;
        else if (implied != out_v) constant = false;
      }
      if (!constant || implied < 0) continue;
      long long cost = 1;
      for (int i = 0; i < n_in; ++i) {
        if (digits[i] == 2) continue;
        const Testability& ti =
            t[static_cast<std::size_t>(g.in[static_cast<std::size_t>(i)])];
        cost += controllability(ti, digits[i]);
      }
      best[implied] = static_cast<int>(std::min<long long>(
          best[implied], std::min<long long>(cost, kInf)));
    }
    t[static_cast<std::size_t>(g.out)].cc0 = best[0];
    t[static_cast<std::size_t>(g.out)].cc1 = best[1];
  }

  // Observability: POs cost 0; a gate input pin is observable through the
  // gate when some side-input assignment makes the output sensitive to it.
  for (const logic::NetId po : ckt.primary_outputs())
    t[static_cast<std::size_t>(po)].obs = 0;

  const auto& topo = ckt.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const logic::GateInst& g = ckt.gate(*it);
    const int n_in = g.input_count();
    const int out_obs = t[static_cast<std::size_t>(g.out)].obs;
    if (out_obs >= kInf) continue;
    for (int pin = 0; pin < n_in; ++pin) {
      int best = kInf;
      for (unsigned v = 0; v < (1u << n_in); ++v) {
        const unsigned flipped = v ^ (1u << pin);
        if (gates::good_output(g.kind, v) ==
            gates::good_output(g.kind, flipped))
          continue;  // this side assignment does not propagate the pin
        long long cost = 1 + out_obs;
        for (int i = 0; i < n_in; ++i) {
          if (i == pin) continue;
          const Testability& ti = t[static_cast<std::size_t>(
              g.in[static_cast<std::size_t>(i)])];
          cost += controllability(ti, (v >> i) & 1u);
        }
        best = static_cast<int>(
            std::min<long long>(best, std::min<long long>(cost, kInf)));
      }
      Testability& tp =
          t[static_cast<std::size_t>(g.in[static_cast<std::size_t>(pin)])];
      tp.obs = std::min(tp.obs, best);
    }
  }
  return t;
}

}  // namespace cpsinw::atpg
