// Transition (gross-delay) fault testing.
//
// The paper maps two defect classes onto delay faults: gate-oxide shorts
// (Sec. IV-B: reduced I_DSAT -> slower edges) and floating polarity gates
// below the stuck-open threshold (Sec. V-A: the "delay fault and stuck-on"
// V_cut region).  Under the gross-delay assumption the late value at
// capture time behaves like a temporary stuck-at of the pre-transition
// value, which reduces generation to a launch (justify the initial value)
// plus a capture (a stuck-at test for the old value).
#pragma once

#include <optional>
#include <vector>

#include "atpg/podem.hpp"

namespace cpsinw::atpg {

/// A slow-to-rise or slow-to-fall fault on a net.
struct TransitionFault {
  logic::NetId net = -1;
  bool slow_to_rise = true;  ///< false = slow-to-fall

  [[nodiscard]] bool operator==(const TransitionFault&) const = default;

  /// Pre-transition (late) value of the net.
  [[nodiscard]] logic::LogicV old_value() const {
    return slow_to_rise ? logic::LogicV::k0 : logic::LogicV::k1;
  }
};

/// A verified launch/capture pair.
struct TransitionTest {
  TransitionFault fault;
  logic::Pattern launch;
  logic::Pattern capture;
};

/// Result for one fault.
struct TransitionResult {
  AtpgStatus status = AtpgStatus::kUntestable;
  std::optional<TransitionTest> test;
};

/// Enumerates both transition faults on every non-constant net.
[[nodiscard]] std::vector<TransitionFault> enumerate_transition_faults(
    const logic::Circuit& ckt);

/// Gross-delay detection check: the launch pattern must set the net to its
/// old value, the capture pattern must both create the transition and
/// propagate the (late) old value to a primary output.
[[nodiscard]] bool transition_detected(const logic::Circuit& ckt,
                                       const TransitionFault& fault,
                                       const logic::Pattern& launch,
                                       const logic::Pattern& capture);

/// Generates a verified launch/capture pair for a transition fault.
[[nodiscard]] TransitionResult generate_transition_test(
    const logic::Circuit& ckt, const TransitionFault& fault,
    const PodemOptions& opt = {});

/// As above, against a caller-owned engine: the whole-netlist sweep
/// compiles the circuit and computes SCOAP once instead of per fault.
[[nodiscard]] TransitionResult generate_transition_test(
    const PodemEngine& engine, const TransitionFault& fault,
    const PodemOptions& opt = {});

/// Transition-fault summary over a circuit.
struct TransitionCoverage {
  int total = 0;
  int detected = 0;
  int untestable = 0;
  int aborted = 0;
  std::vector<TransitionTest> tests;

  [[nodiscard]] double coverage() const {
    return total == 0 ? 1.0
                      : static_cast<double>(detected) /
                            static_cast<double>(total);
  }
};

/// Runs transition ATPG over the whole net list.
[[nodiscard]] TransitionCoverage generate_all_transition_tests(
    const logic::Circuit& ckt, const PodemOptions& opt = {});

}  // namespace cpsinw::atpg
