// Reproduces paper Table III: detection of polarity defects (stuck-at
// n-type / p-type) for each transistor of the 2-input TIG-SiNWFET XOR,
// found by exhaustive fault injection and cross-checked in SPICE.
#include <iostream>

#include "core/experiments.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

std::string vector_ab(unsigned bits) {
  // Paper notation: A first.
  std::string s;
  s += ((bits >> 0) & 1u) ? '1' : '0';
  s += ((bits >> 1) & 1u) ? '1' : '0';
  return s;
}

}  // namespace

int main() {
  using namespace cpsinw;
  const core::Table3Data data = core::run_table3();

  std::cout << "=== Table III: detection of polarity defects on the "
               "2-input TIG-SiNWFET XOR ===\n\n";
  util::AsciiTable table({"Fault type", "Location", "Input for detection",
                          "Leakage current", "Output voltage",
                          "IDDQ faulty/good", "Vout faulty [V]",
                          "Vout good [V]"});
  for (const core::Table3Row& row : data.rows) {
    table.row()
        .cell(gates::to_string(row.kind))
        .cell("t" + std::to_string(row.transistor + 1))
        .cell(vector_ab(row.detect_vector))
        .boolean(row.leakage_detect)
        .boolean(row.output_detect)
        .sci(row.iddq_faulty_a / row.iddq_ff_a, 2)
        .num(row.vout_faulty, 3)
        .num(row.vout_good, 3);
  }
  table.print(std::cout);

  std::cout
      << "\nPaper invariants reproduced:\n"
         "  * every polarity fault is IDDQ-detectable (leakage column all "
         "Yes; swing > 1e4..1e6),\n"
         "  * pull-down faults (t3, t4) are additionally detectable at the "
         "output,\n"
         "  * pull-up faults (t1, t2) keep the output correct — only the "
         "supply current reveals them.\n"
         "Note: under a single consistent transistor-level topology the "
         "detecting vectors of the\n"
         "n-type and p-type fault on the same device differ (the paper "
         "lists one vector per device);\n"
         "see EXPERIMENTS.md for the per-vector discussion.\n";
  return 0;
}
