// Reproduces paper Table II: structural and physical parameters of the
// TIG-SiNWFET, plus the electrical characteristics our calibrated model
// derives from them.
#include <iostream>

#include "core/experiments.hpp"
#include "device/params.hpp"
#include "util/table.hpp"

int main() {
  using namespace cpsinw;
  const device::TigParams p;

  std::cout << "=== Table II: TIG-SiNWFET structural and physical "
               "parameters ===\n\n";
  util::AsciiTable table({"Device parameter", "Value", "Paper value"});
  table.add_row({"Length of control gate (L_CG)",
                 util::format_fixed(p.l_cg_nm, 0) + " nm", "22 nm"});
  table.add_row({"Length of polarity gates (L_PGS, L_PGD)",
                 util::format_fixed(p.l_pgs_nm, 0) + " nm", "22 nm"});
  table.add_row({"Length of spacer (L_CP)",
                 util::format_fixed(p.l_sp_nm, 0) + " nm", "18 nm"});
  table.add_row({"Channel doping concentration",
                 util::format_sci(p.channel_doping_cm3, 0) + " cm^-3",
                 "1e15 cm^-3"});
  table.add_row({"Schottky barrier height",
                 util::format_fixed(p.phi_b_ev, 2) + " eV", "0.41 eV"});
  table.add_row({"Oxide thickness (T_ox)",
                 util::format_fixed(p.t_ox_nm, 1) + " nm", "5.1 nm"});
  table.add_row({"Radius of nanowire (R_NW)",
                 util::format_fixed(p.r_nw_nm, 1) + " nm", "7.5 nm"});
  table.add_row({"Supply voltage (V_DD)",
                 util::format_fixed(p.vdd, 1) + " V", "1.2 V"});
  table.print(std::cout);

  std::cout << "\n=== Derived electricals of the calibrated analytical "
               "model (TCAD substitute) ===\n\n";
  const core::DerivedElectricals e = core::derived_electricals();
  util::AsciiTable derived({"Quantity", "Value"});
  derived.add_row({"I_DSAT (n-branch)", util::format_sci(e.ids_sat_n, 3) +
                                            " A"});
  derived.add_row({"I_DSAT (p-branch)", util::format_sci(e.ids_sat_p, 3) +
                                            " A"});
  derived.add_row({"n/p drive ratio",
                   util::format_fixed(e.ids_sat_n / e.ids_sat_p, 2)});
  derived.add_row({"I_off (n-config, V_CG = 0)",
                   util::format_sci(e.ioff_n, 3) + " A"});
  derived.add_row({"I_on / I_off", util::format_sci(e.on_off_ratio, 2)});
  derived.add_row({"V_Th (n, constant-current)",
                   util::format_fixed(e.vth_n, 3) + " V"});
  derived.add_row({"Subthreshold swing",
                   util::format_fixed(e.ss_mv_dec, 1) + " mV/dec"});
  derived.add_row({"Channel length (source to drain)",
                   util::format_fixed(p.channel_length_nm(), 0) + " nm"});
  derived.print(std::cout);
  return 0;
}
