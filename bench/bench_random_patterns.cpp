// Extension experiment: random-pattern coverage curves under the three
// observation regimes — voltage-only, voltage + IDDQ, and voltage + IDDQ
// with sequential retention (chance two-pattern sequences) — quantifying
// how much of the CP fault universe each observable unlocks.
#include <iostream>

#include "faults/random_patterns.hpp"
#include "logic/benchmarks.hpp"
#include "util/table.hpp"

int main() {
  using namespace cpsinw;

  struct Named {
    std::string name;
    logic::Circuit ckt;
  };
  std::vector<Named> circuits;
  circuits.push_back({"full_adder", logic::full_adder()});
  circuits.push_back({"ripple_adder_4", logic::ripple_adder(4)});
  circuits.push_back({"c17", logic::c17()});
  circuits.push_back({"alu_slice", logic::alu_slice()});

  std::cout << "=== Random-pattern coverage by observation regime "
               "(256 patterns, seed 1) ===\n\n";
  util::AsciiTable table({"Circuit", "faults", "voltage-only [%]",
                          "+IDDQ [%]", "+IDDQ+sequences [%]",
                          "patterns used"});
  for (const Named& n : circuits) {
    const auto faults = faults::generate_fault_list(n.ckt);

    faults::RandomPatternOptions base;
    base.max_patterns = 256;
    base.stale_limit = 96;

    faults::RandomPatternOptions voltage = base;
    voltage.sim.observe_iddq = false;
    voltage.sim.sequential_patterns = false;
    const auto r_v = run_random_patterns(n.ckt, faults, voltage);

    faults::RandomPatternOptions iddq = base;
    iddq.sim.sequential_patterns = false;
    const auto r_i = run_random_patterns(n.ckt, faults, iddq);

    const auto r_s = run_random_patterns(n.ckt, faults, base);

    table.row()
        .cell(n.name)
        .cell(std::to_string(faults.size()))
        .num(100.0 * r_v.final_coverage(), 1)
        .num(100.0 * r_i.final_coverage(), 1)
        .num(100.0 * r_s.final_coverage(), 1)
        .cell(std::to_string(r_s.patterns.size()));
  }
  table.print(std::cout);

  std::cout << "\n--- Coverage growth on the CP full adder (voltage + "
               "IDDQ + sequences) ---\n\n";
  const logic::Circuit fa = logic::full_adder();
  const auto faults = faults::generate_fault_list(fa);
  faults::RandomPatternOptions opt;
  opt.max_patterns = 64;
  const auto run = run_random_patterns(fa, faults, opt);
  util::AsciiTable curve({"patterns", "detected", "coverage [%]"});
  for (const auto& pt : run.curve) {
    if (pt.patterns == 1 || pt.patterns % 8 == 0 ||
        pt.patterns == static_cast<int>(run.curve.size()))
      curve.row()
          .cell(std::to_string(pt.patterns))
          .cell(std::to_string(pt.detected))
          .num(100.0 * pt.coverage, 1);
  }
  curve.print(std::cout);

  std::cout << "\nReading: voltage observation alone saturates early — "
               "the residue is exactly the\npaper's fault population "
               "(IDDQ-only polarity bridges; channel breaks needing the\n"
               "deterministic CB procedure, which random patterns cannot "
               "emulate because it takes\nrail-inconsistent stimuli).\n";
  return 0;
}
