// Performance microbenchmarks (google-benchmark) for the computational
// kernels: device-model evaluation, MNA operating point, transient step,
// switch-level evaluation, packed fault simulation, and PODEM.
#include <benchmark/benchmark.h>

#include <memory>

#include "atpg/channel_break.hpp"
#include "atpg/podem.hpp"
#include "device/table_model.hpp"
#include "faults/eval_context.hpp"
#include "faults/fault_sim.hpp"
#include "gates/spice_builder.hpp"
#include "gates/switch_level.hpp"
#include "logic/benchmarks.hpp"
#include "logic/compiled_circuit.hpp"
#include "spice/dcop.hpp"
#include "spice/transient.hpp"
#include "util/rng.hpp"

namespace {

using namespace cpsinw;

void BM_DeviceEval(benchmark::State& state) {
  const device::TigModel model((device::TigParams()));
  double v = 0.0;
  for (auto _ : state) {
    v += 1e-4;
    if (v > 1.2) v = 0.0;
    benchmark::DoNotOptimize(model.ids(
        {.vcg = v, .vpgs = 1.2, .vpgd = 1.2, .vs = 0.0, .vd = 1.2}));
  }
}
BENCHMARK(BM_DeviceEval);

void BM_TableModelEval(benchmark::State& state) {
  const device::TigModel model((device::TigParams()));
  const device::TableModel table = device::TableModel::build(model);
  double v = 0.0;
  for (auto _ : state) {
    v += 1e-4;
    if (v > 1.2) v = 0.0;
    benchmark::DoNotOptimize(table.ids(
        {.vcg = v, .vpgs = 1.2, .vpgd = 1.2, .vs = 0.0, .vd = 1.2}));
  }
}
BENCHMARK(BM_TableModelEval);

void BM_XorDcOperatingPoint(benchmark::State& state) {
  gates::CellCircuitSpec spec;
  spec.kind = gates::CellKind::kXor2;
  spec.inputs = gates::dc_inputs(gates::CellKind::kXor2, 0b01u, 1.2);
  gates::CellCircuit cc = gates::build_cell_circuit(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::dc_operating_point(cc.ckt));
  }
}
BENCHMARK(BM_XorDcOperatingPoint);

void BM_InverterTransient(benchmark::State& state) {
  gates::CellCircuitSpec spec;
  spec.kind = gates::CellKind::kInv;
  spec.inputs = {spice::Waveform::step(1.2, 0.0, 0.2e-9, 10e-12)};
  gates::CellCircuit cc = gates::build_cell_circuit(spec);
  spice::TranOptions opt;
  opt.t_stop = 1e-9;
  opt.dt = 4e-12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::transient(cc.ckt, opt));
  }
}
BENCHMARK(BM_InverterTransient);

void BM_SwitchLevelEval(benchmark::State& state) {
  unsigned v = 0;
  for (auto _ : state) {
    v = (v + 1) & 7u;
    benchmark::DoNotOptimize(
        gates::eval_switch(gates::CellKind::kMaj3, v,
                           {1, gates::TransistorFault::kStuckAtNType}));
  }
}
BENCHMARK(BM_SwitchLevelEval);

void BM_PackedFaultSim(benchmark::State& state) {
  const logic::Circuit ckt = logic::ripple_adder(8);
  const faults::FaultSimulator fsim(ckt);
  faults::FaultListOptions flo;
  flo.include_transistor_faults = false;
  const auto faults = generate_fault_list(ckt, flo);
  std::vector<logic::Pattern> patterns;
  util::SplitMix64 rng(7);
  for (int k = 0; k < 64; ++k) {
    logic::Pattern p;
    for (std::size_t i = 0; i < ckt.primary_inputs().size(); ++i)
      p.push_back(logic::from_bool(rng.chance(0.5)));
    patterns.push_back(std::move(p));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.run(faults, patterns));
  }
  state.counters["faults"] = static_cast<double>(faults.size());
}
BENCHMARK(BM_PackedFaultSim);

void BM_ContextTransistorSim(benchmark::State& state) {
  const logic::Circuit ckt = logic::parity_tree(64);
  const faults::FaultSimulator fsim(ckt);
  faults::FaultListOptions flo;
  flo.include_line_stuck_at = false;
  flo.include_transistor_faults = true;
  const auto faults = generate_fault_list(ckt, flo);
  std::vector<logic::Pattern> patterns;
  util::SplitMix64 rng(3);
  for (int k = 0; k < 64; ++k) {
    logic::Pattern p;
    for (std::size_t i = 0; i < ckt.primary_inputs().size(); ++i)
      p.push_back(logic::from_bool(rng.chance(0.5)));
    patterns.push_back(std::move(p));
  }
  const faults::EvalContext ctx(ckt, patterns);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.run(ctx, faults));
  }
  state.counters["faults"] = static_cast<double>(faults.size());
}
BENCHMARK(BM_ContextTransistorSim);

void BM_CompiledScalarSim(benchmark::State& state) {
  // Scalar good-machine throughput of the compiled table-driven kernel
  // (the layer under every ATPG verification loop and serial fault pass).
  const logic::Circuit ckt = logic::alu_slice();
  const logic::Simulator sim(ckt);
  std::vector<logic::Pattern> patterns;
  util::SplitMix64 rng(11);
  for (int k = 0; k < 32; ++k) {
    logic::Pattern p;
    for (std::size_t i = 0; i < ckt.primary_inputs().size(); ++i)
      p.push_back(logic::from_bool(rng.chance(0.5)));
    patterns.push_back(std::move(p));
  }
  std::size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate(patterns[k]));
    k = (k + 1) % patterns.size();
  }
}
BENCHMARK(BM_CompiledScalarSim);

void BM_CompiledLineFaultSim(benchmark::State& state) {
  // Full line-stuck-at campaign through the compiled packed kernels
  // (scratch-buffer reuse, driver-skip stem faults).
  const logic::Circuit ckt = logic::parity_tree(32);
  const faults::FaultSimulator fsim(ckt);
  faults::FaultListOptions flo;
  flo.include_transistor_faults = false;
  const auto faults = generate_fault_list(ckt, flo);
  std::vector<logic::Pattern> patterns;
  util::SplitMix64 rng(13);
  for (int k = 0; k < 128; ++k) {
    logic::Pattern p;
    for (std::size_t i = 0; i < ckt.primary_inputs().size(); ++i)
      p.push_back(logic::from_bool(rng.chance(0.5)));
    patterns.push_back(std::move(p));
  }
  const faults::EvalContext ctx(ckt, patterns);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.run(ctx, faults));
  }
  state.counters["faults"] = static_cast<double>(faults.size());
}
BENCHMARK(BM_CompiledLineFaultSim);

void BM_CompiledBatchLineFaultSim(benchmark::State& state) {
  // Same campaign through the multi-fault batch kernel: kBatchLanes line
  // faults share one forward walk over the SoA bit planes.  The
  // words_per_s counter is the kernel's post-early-exit plane throughput
  // (pattern words evaluated per second across all lanes).
  const logic::Circuit ckt = logic::parity_tree(48);
  const faults::FaultSimulator fsim(ckt);
  faults::FaultListOptions flo;
  flo.include_transistor_faults = false;
  const auto faults = generate_fault_list(ckt, flo);
  std::vector<logic::Pattern> patterns;
  util::SplitMix64 rng(13);
  for (int k = 0; k < 256; ++k) {
    logic::Pattern p;
    for (std::size_t i = 0; i < ckt.primary_inputs().size(); ++i)
      p.push_back(logic::from_bool(rng.chance(0.5)));
    patterns.push_back(std::move(p));
  }
  const faults::EvalContext ctx(ckt, patterns);
  // Pin the work-reduction layer off: this benchmark measures the batch
  // kernel itself, and critical-path tracing would bypass it entirely on
  // this fan-out-free circuit.
  faults::FaultSimOptions options;
  options.drop_detected = false;
  options.critical_path_tracing = false;
  faults::LineBatchStats stats;
  for (auto _ : state) {
    faults::LineBatchStats run_stats;
    benchmark::DoNotOptimize(
        fsim.run_range(ctx, faults, 0, faults.size(), options, &run_stats));
    stats.merge(run_stats);
  }
  state.counters["faults"] = static_cast<double>(faults.size());
  state.counters["words_per_s"] = benchmark::Counter(
      static_cast<double>(stats.words), benchmark::Counter::kIsRate);
  state.counters["lane_fill"] =
      stats.groups != 0
          ? static_cast<double>(stats.lane_slots) /
                static_cast<double>(stats.groups *
                                    logic::CompiledCircuit::kBatchLanes)
          : 0.0;
}
BENCHMARK(BM_CompiledBatchLineFaultSim);

void BM_PodemLineFault(benchmark::State& state) {
  const logic::Circuit ckt = logic::multiplier_2x2();
  const atpg::PodemEngine engine(ckt);
  const faults::Fault f =
      faults::Fault::net_stuck(ckt.find_net("m2"), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.generate_line(f));
  }
}
BENCHMARK(BM_PodemLineFault);

void BM_ChannelBreakDerivation(benchmark::State& state) {
  int t = 0;
  for (auto _ : state) {
    t = (t + 1) & 3;
    benchmark::DoNotOptimize(
        atpg::derive_cell_test(gates::CellKind::kXor3, t));
  }
}
BENCHMARK(BM_ChannelBreakDerivation);

}  // namespace

BENCHMARK_MAIN();
