// Two benchmark legs over the evaluation spine, each cross-checked fault
// by fault — a speedup only counts when the answer is bit-identical:
//
//  1. "context" (BENCH_context.json): the PR-2 shared-evaluation-context
//     win on the transistor-fault hot loop.  "before" replays the seed
//     algorithm verbatim — interpreted scalar simulation, good machine
//     re-simulated and the switch-level dictionary re-derived for every
//     fault; "after" is the library context path.  Gate: >= 2x.
//
//  2. "compiled" (BENCH_compiled.json): the compiled-core win on top of
//     the context/packing layer.  "before" replays the PR-2-era engine —
//     packed batches and dictionary substitution, but interpreted: every
//     gate re-walks GateInst records through topo_order() with per-gate
//     fault checks and a fresh values vector per fault per batch.
//     "after" is the library path (logic::CompiledCircuit underneath).
//     Same fault universe (line + transistor), same records required
//     bit-identically.  Gate: >= 1.5x at 1 thread on the roster.
//
//  3. "batched" (a sub-object of BENCH_compiled.json): the vectorized-core
//     win on top of the compiled core.  "before" is the PR-5 single-fault
//     packed path (batch_line_faults=false: one eval_packed_line walk per
//     fault per 64-pattern word); "after" is the multi-fault batch kernel
//     (kBatchLanes faults share one suffix walk over kSimdWords-wide plane
//     groups), measured once with the portable uint64x4 backend and once
//     with whatever SIMD backend this build selected.  Gates: batched
//     portable >= 2x over single-fault; SIMD >= 1.15x over portable where
//     a vector backend is compiled in (the ratio shrinks whenever the
//     portable path gets faster — it dropped from ~1.33x to ~1.2x when the
//     work-reduction layer's restructuring improved portable code layout —
//     so the gate only guards against the backend losing its edge
//     outright).  All three paths bit-identical.
//
//  4. "dropping" (a sub-object of BENCH_compiled.json): the work-reduction
//     layer (fault dropping + critical-path tracing) vs the PR-7 batched
//     path, same universe, bit-identical records required.  Gate: >= 1.5x.
//
//  5. "large_circuit" (a sub-object of BENCH_compiled.json): the first
//     circuit-scale leg — alu_array(64) exported to `.bench` and
//     re-ingested through the foreign-netlist front end (~2.1k CP gates
//     after MAJ3 decomposition), so the measured circuit is the parser's
//     output, not the generator's.  Checks: parsed circuit functionally
//     matches the generator; a five-class fault campaign (line stuck-at,
//     both polarity faults, stuck-open, stuck-on) produces byte-identical
//     stable JSON at 1, 2, and 8 threads; and the batched line kernel
//     holds its >= 1.5x win over the single-fault walk at this scale.
//
// The last line printed is the concatenation marker-free JSON object of
// the *compiled* leg (with the batched sub-object merged in); both
// objects are written to their BENCH_*.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "faults/eval_context.hpp"
#include "faults/fault_sim.hpp"
#include "gates/fault_dictionary.hpp"
#include "logic/bench_format.hpp"
#include "logic/benchmarks.hpp"
#include "logic/simd.hpp"
#include "util/rng.hpp"

namespace {

using namespace cpsinw;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<logic::Pattern> random_patterns(const logic::Circuit& ckt,
                                            int count, std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<logic::Pattern> out;
  for (int k = 0; k < count; ++k) {
    logic::Pattern p(ckt.primary_inputs().size());
    for (logic::LogicV& v : p) v = logic::from_bool(rng.chance(0.5));
    out.push_back(std::move(p));
  }
  return out;
}

bool records_identical(const faults::DetectionRecord& a,
                       const faults::DetectionRecord& b) {
  return a.detected_output == b.detected_output &&
         a.detected_iddq == b.detected_iddq && a.potential == b.potential &&
         a.first_pattern == b.first_pattern;
}

// ---------------------------------------------------------------------------
// Interpreted reference evaluators: the pre-compiled-core library
// algorithms, frozen (the library itself now runs the table-driven
// kernels, so the interpreted walk lives here).
namespace interp {

using logic::Circuit;
using logic::GateInst;
using logic::LogicV;
using logic::NetId;
using logic::Pattern;
using logic::SimResult;

std::vector<LogicV> seed_values(const Circuit& ckt, const Pattern& pattern) {
  std::vector<LogicV> values(static_cast<std::size_t>(ckt.net_count()),
                             LogicV::kX);
  for (NetId n = 0; n < ckt.net_count(); ++n) {
    const LogicV c = ckt.constant_of(n);
    if (is_binary(c)) values[static_cast<std::size_t>(n)] = c;
  }
  for (std::size_t i = 0; i < pattern.size(); ++i)
    values[static_cast<std::size_t>(ckt.primary_inputs()[i])] = pattern[i];
  return values;
}

LogicV eval_gate(const GateInst& g, const std::vector<LogicV>& values) {
  const auto bits = logic::Simulator::local_input(g, values);
  if (!bits) {
    const auto in_at = [&](int i) {
      return g.in[static_cast<std::size_t>(i)] >= 0
                 ? values[static_cast<std::size_t>(
                       g.in[static_cast<std::size_t>(i)])]
                 : LogicV::kX;
    };
    return logic::eval_cell_x(g.kind, in_at(0), in_at(1), in_at(2));
  }
  return logic::from_bool(gates::good_output(g.kind, *bits) != 0);
}

SimResult simulate(const Circuit& ckt, const Pattern& pattern) {
  SimResult r;
  r.net_values = seed_values(ckt, pattern);
  for (const int gid : ckt.topo_order()) {
    const GateInst& g = ckt.gate(gid);
    r.net_values[static_cast<std::size_t>(g.out)] = eval_gate(g, r.net_values);
  }
  return r;
}

SimResult simulate_faulty(const Circuit& ckt, const Pattern& pattern,
                          int fault_gate, const gates::FaultAnalysis& fa,
                          const std::vector<LogicV>* previous_state) {
  SimResult r;
  r.net_values = seed_values(ckt, pattern);
  for (const int gid : ckt.topo_order()) {
    const GateInst& g = ckt.gate(gid);
    if (gid != fault_gate) {
      r.net_values[static_cast<std::size_t>(g.out)] =
          eval_gate(g, r.net_values);
      continue;
    }
    const auto bits = logic::Simulator::local_input(g, r.net_values);
    if (!bits) {
      r.net_values[static_cast<std::size_t>(g.out)] = LogicV::kX;
      continue;
    }
    const gates::FaultRow& row = fa.rows[*bits];
    if (row.faulty.contention) r.iddq_flag = true;
    const int fv =
        row.faulty.floating ? -2 : gates::logic_value(row.faulty.out);
    LogicV out = LogicV::kX;
    if (fv == 0) {
      out = LogicV::k0;
    } else if (fv == 1) {
      out = LogicV::k1;
    } else if (fv == -2) {
      out = previous_state != nullptr
                ? (*previous_state)[static_cast<std::size_t>(g.out)]
                : LogicV::kX;
      if (out == LogicV::kZ) out = LogicV::kX;
    }
    r.net_values[static_cast<std::size_t>(g.out)] = out;
  }
  return r;
}

std::vector<std::uint64_t> packed_line(const Circuit& ckt,
                                       const std::vector<std::uint64_t>& pi,
                                       const faults::Fault& fault) {
  std::vector<std::uint64_t> values(
      static_cast<std::size_t>(ckt.net_count()), 0);
  for (NetId n = 0; n < ckt.net_count(); ++n)
    if (ckt.constant_of(n) == LogicV::k1)
      values[static_cast<std::size_t>(n)] = ~0ull;
  for (std::size_t i = 0; i < pi.size(); ++i)
    values[static_cast<std::size_t>(ckt.primary_inputs()[i])] = pi[i];

  const std::uint64_t forced = fault.stuck_at_one ? ~0ull : 0ull;
  if (fault.site == faults::FaultSite::kNet)
    values[static_cast<std::size_t>(fault.net)] = forced;

  for (const int gid : ckt.topo_order()) {
    const GateInst& g = ckt.gate(gid);
    std::uint64_t in[3] = {0, 0, 0};
    for (int i = 0; i < g.input_count(); ++i) {
      in[i] =
          values[static_cast<std::size_t>(g.in[static_cast<std::size_t>(i)])];
      if (fault.site == faults::FaultSite::kGateInput && fault.gate == gid &&
          fault.pin == i)
        in[i] = forced;
    }
    std::uint64_t out = logic::eval_cell_packed(g.kind, in[0], in[1], in[2]);
    if (fault.site == faults::FaultSite::kNet && g.out == fault.net)
      out = forced;
    values[static_cast<std::size_t>(g.out)] = out;
  }
  return values;
}

/// Interpreted replica of the PR-2 context: packed batches built by the
/// interpreted simulate_packed, scalar goods by the interpreted simulator,
/// memoized-enough dictionaries (derived once per fault here; the
/// interesting cost is the per-gate walk, not the 2^n rows).
struct Context {
  std::vector<Pattern> patterns;
  std::vector<SimResult> good;
  struct Batch {
    std::size_t base = 0;
    std::uint64_t active = 0;
    std::vector<std::uint64_t> pi_words;
    std::vector<std::uint64_t> net_words;
  };
  std::vector<Batch> batches;
};

Context build_context(const Circuit& ckt, const std::vector<Pattern>& ps) {
  Context ctx;
  ctx.patterns = ps;
  for (const Pattern& p : ps) ctx.good.push_back(simulate(ckt, p));
  for (std::size_t base = 0; base < ps.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, ps.size() - base);
    Context::Batch b;
    b.base = base;
    b.active = count == 64 ? ~0ull : ((1ull << count) - 1ull);
    const std::vector<Pattern> slice(ps.begin() + static_cast<long>(base),
                                     ps.begin() +
                                         static_cast<long>(base + count));
    b.pi_words = logic::pack_patterns(ckt, slice);
    b.net_words = logic::simulate_packed(ckt, b.pi_words);
    ctx.batches.push_back(std::move(b));
  }
  return ctx;
}

faults::DetectionRecord transistor_serial(const Circuit& ckt,
                                          const Context& ctx,
                                          const faults::Fault& fault,
                                          const gates::FaultAnalysis& fa,
                                          const faults::FaultSimOptions& opt) {
  faults::DetectionRecord rec;
  std::vector<LogicV> state;
  for (std::size_t pi = 0; pi < ctx.patterns.size(); ++pi) {
    const SimResult& good = ctx.good[pi];
    const SimResult bad = simulate_faulty(
        ckt, ctx.patterns[pi], fault.gate, fa,
        opt.sequential_patterns && !state.empty() ? &state : nullptr);
    if (opt.sequential_patterns) state = bad.net_values;

    bool hit = false;
    if (bad.iddq_flag && opt.observe_iddq) {
      rec.detected_iddq = true;
      hit = true;
    }
    for (const NetId po : ckt.primary_outputs()) {
      const LogicV g = good.net_values[static_cast<std::size_t>(po)];
      const LogicV b = bad.net_values[static_cast<std::size_t>(po)];
      if (is_binary(g) && is_binary(b) && g != b) {
        rec.detected_output = true;
        hit = true;
      } else if (is_binary(g) && !is_binary(b)) {
        rec.potential = true;
      }
    }
    if (hit && rec.first_pattern < 0) rec.first_pattern = static_cast<int>(pi);
  }
  return rec;
}

faults::DetectionRecord transistor_packed(const Circuit& ckt,
                                          const Context& ctx,
                                          const faults::Fault& fault,
                                          const gates::FaultAnalysis& fa,
                                          const faults::FaultSimOptions& opt) {
  faults::DetectionRecord rec;
  std::vector<std::uint64_t> values(
      static_cast<std::size_t>(ckt.net_count()), 0);
  for (const Context::Batch& batch : ctx.batches) {
    for (NetId n = 0; n < ckt.net_count(); ++n)
      values[static_cast<std::size_t>(n)] =
          ckt.constant_of(n) == LogicV::k1 ? ~0ull : 0ull;
    for (std::size_t i = 0; i < batch.pi_words.size(); ++i)
      values[static_cast<std::size_t>(ckt.primary_inputs()[i])] =
          batch.pi_words[i];

    std::uint64_t contention = 0;
    for (const int gid : ckt.topo_order()) {
      const GateInst& g = ckt.gate(gid);
      std::uint64_t in[3] = {0, 0, 0};
      for (int i = 0; i < g.input_count(); ++i)
        in[i] = values[static_cast<std::size_t>(
            g.in[static_cast<std::size_t>(i)])];
      std::uint64_t out;
      if (gid == fault.gate) {
        out = 0;
        for (const gates::FaultRow& row : fa.rows) {
          std::uint64_t minterm = ~0ull;
          for (int i = 0; i < g.input_count(); ++i)
            minterm &= ((row.input >> i) & 1u) != 0 ? in[i] : ~in[i];
          if (fa.faulty_logic(row.input) == 1) out |= minterm;
          if (row.faulty.contention) contention |= minterm;
        }
      } else {
        out = logic::eval_cell_packed(g.kind, in[0], in[1], in[2]);
      }
      values[static_cast<std::size_t>(g.out)] = out;
    }

    std::uint64_t diff = 0;
    for (const NetId po : ckt.primary_outputs())
      diff |= (batch.net_words[static_cast<std::size_t>(po)] ^
               values[static_cast<std::size_t>(po)]);
    diff &= batch.active;
    contention &= batch.active;

    if (diff != 0) rec.detected_output = true;
    const std::uint64_t iddq = opt.observe_iddq ? contention : 0;
    if (iddq != 0) rec.detected_iddq = true;
    const std::uint64_t hit = diff | iddq;
    if (hit != 0 && rec.first_pattern < 0)
      rec.first_pattern = static_cast<int>(batch.base) + __builtin_ctzll(hit);
  }
  return rec;
}

/// The PR-2-era run_range, interpreted: packed line batches with fault
/// dropping and a fresh values vector per fault per batch, packed
/// transistor substitution for binary dictionaries, retained-state serial
/// for the rest.
std::vector<faults::DetectionRecord> run_range(
    const Circuit& ckt, const Context& ctx,
    const std::vector<faults::Fault>& fault_list,
    const faults::FaultSimOptions& opt) {
  std::vector<faults::DetectionRecord> records(fault_list.size());

  for (const Context::Batch& batch : ctx.batches) {
    for (std::size_t fi = 0; fi < fault_list.size(); ++fi) {
      const faults::Fault& f = fault_list[fi];
      if (f.site == faults::FaultSite::kGateTransistor) continue;
      faults::DetectionRecord& rec = records[fi];
      if (rec.detected_output) continue;  // fault dropping
      const auto faulty = packed_line(ckt, batch.pi_words, f);
      std::uint64_t diff = 0;
      for (const NetId po : ckt.primary_outputs())
        diff |= (batch.net_words[static_cast<std::size_t>(po)] ^
                 faulty[static_cast<std::size_t>(po)]);
      diff &= batch.active;
      if (diff != 0) {
        rec.detected_output = true;
        rec.first_pattern =
            static_cast<int>(batch.base) + __builtin_ctzll(diff);
      }
    }
  }

  for (std::size_t fi = 0; fi < fault_list.size(); ++fi) {
    const faults::Fault& f = fault_list[fi];
    if (f.site != faults::FaultSite::kGateTransistor) continue;
    const gates::FaultAnalysis& fa = gates::DictionaryCache::global().lookup(
        ckt.gate(f.gate).kind, f.cell_fault);
    records[fi] = !fa.needs_sequence && !fa.marginal_detectable
                      ? transistor_packed(ckt, ctx, f, fa, opt)
                      : transistor_serial(ckt, ctx, f, fa, opt);
  }
  return records;
}

}  // namespace interp

// ---------------------------------------------------------------------------
// Leg 1: shared-context speedup on the transistor hot loop (seed "before").

int run_context_leg() {
  const logic::Circuit ckt = logic::parity_tree(64);

  faults::FaultListOptions flo;
  flo.include_line_stuck_at = false;
  flo.include_transistor_faults = true;
  const std::vector<faults::Fault> universe = faults::generate_fault_list(ckt, flo);
  const std::vector<logic::Pattern> patterns = random_patterns(ckt, 128, 1);

  // Work reduction off: this leg measures the shared-context win alone;
  // fault dropping has its own leg.
  faults::FaultSimOptions options;
  options.drop_detected = false;
  options.critical_path_tracing = false;
  const double work = static_cast<double>(universe.size()) *
                      static_cast<double>(patterns.size());

  std::cout << "=== Shared-context transistor-fault throughput: "
            << "parity_tree(64), " << universe.size() << " faults x "
            << patterns.size() << " patterns, 1 thread ===\n";

  // ---- Before: seed algorithm, O(faults x patterns) interpreted
  // good-machine work plus an ad-hoc analyze_fault per fault.
  std::vector<faults::DetectionRecord> before_records;
  const auto t_before = Clock::now();
  for (const faults::Fault& f : universe) {
    const gates::FaultAnalysis fa =
        gates::analyze_fault(ckt.gate(f.gate).kind, f.cell_fault);
    faults::DetectionRecord rec;
    std::vector<logic::LogicV> state;
    for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
      const logic::SimResult good = interp::simulate(ckt, patterns[pi]);
      const logic::SimResult bad = interp::simulate_faulty(
          ckt, patterns[pi], f.gate, fa,
          options.sequential_patterns && !state.empty() ? &state : nullptr);
      if (options.sequential_patterns) state = bad.net_values;
      bool hit = false;
      if (bad.iddq_flag && options.observe_iddq) {
        rec.detected_iddq = true;
        hit = true;
      }
      for (const logic::NetId po : ckt.primary_outputs()) {
        const logic::LogicV g =
            good.net_values[static_cast<std::size_t>(po)];
        const logic::LogicV b = bad.net_values[static_cast<std::size_t>(po)];
        if (is_binary(g) && is_binary(b) && g != b) {
          rec.detected_output = true;
          hit = true;
        } else if (is_binary(g) && !is_binary(b)) {
          rec.potential = true;
        }
      }
      if (hit && rec.first_pattern < 0)
        rec.first_pattern = static_cast<int>(pi);
    }
    before_records.push_back(rec);
  }
  const double before_s = seconds_since(t_before);

  // ---- After: one context (includes its build cost), context run.
  const faults::FaultSimulator fsim(ckt);
  const auto t_after = Clock::now();
  const faults::EvalContext ctx(ckt, patterns);
  const faults::FaultSimReport after = fsim.run(ctx, universe, options);
  const double after_s = seconds_since(t_after);

  bool identical = after.records.size() == before_records.size();
  for (std::size_t i = 0; identical && i < before_records.size(); ++i)
    identical = records_identical(before_records[i], after.records[i]);

  const double before_rate = before_s > 0.0 ? work / before_s : 0.0;
  const double after_rate = after_s > 0.0 ? work / after_s : 0.0;
  const double speedup = after_s > 0.0 ? before_s / after_s : 0.0;

  std::cout << "before (seed serial):   " << before_s * 1e3 << " ms, "
            << before_rate << " faults x patterns / s\n";
  std::cout << "after (shared context): " << after_s * 1e3 << " ms, "
            << after_rate << " faults x patterns / s\n";
  std::cout << "speedup: " << speedup << "x, records "
            << (identical ? "bit-identical" : "MISMATCH") << "\n\n";

  const std::string json =
      "{\"bench\":\"context\",\"circuit\":\"parity_tree_64\",\"faults\":" +
      std::to_string(universe.size()) +
      ",\"patterns\":" + std::to_string(patterns.size()) +
      ",\"before_s\":" + std::to_string(before_s) +
      ",\"after_s\":" + std::to_string(after_s) +
      ",\"before_fault_patterns_per_s\":" + std::to_string(before_rate) +
      ",\"after_fault_patterns_per_s\":" + std::to_string(after_rate) +
      ",\"speedup\":" + std::to_string(speedup) +
      ",\"identical\":" + (identical ? "true" : "false") + "}";
  std::ofstream("BENCH_context.json") << json << "\n";
  std::cout << json << "\n\n";

  return identical && speedup >= 2.0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Leg 2: compiled core vs the interpreted PR-2 engine, full fault classes.

int run_compiled_leg(std::string& json_out) {
  struct Entry {
    std::string name;
    logic::Circuit ckt;
  };
  std::vector<Entry> roster;
  roster.push_back({"parity_tree_48", logic::parity_tree(48)});
  roster.push_back({"ripple_adder_8", logic::ripple_adder(8)});
  roster.push_back({"alu_slice", logic::alu_slice()});
  roster.push_back({"tmr_voter_5", logic::tmr_voter(5)});
  roster.push_back({"c17", logic::c17()});

  // Work reduction off: the compiled-vs-interpreted comparison predates
  // the dropping layer and must keep measuring the same work.
  faults::FaultSimOptions options;
  options.drop_detected = false;
  options.critical_path_tracing = false;
  double before_total = 0.0;
  double after_total = 0.0;
  bool identical = true;
  std::size_t total_faults = 0;
  std::string per_circuit_json = "[";

  std::cout << "=== Compiled-core fault simulation vs interpreted engine "
            << "(line + transistor, 128 patterns, 1 thread) ===\n";

  for (std::size_t ci = 0; ci < roster.size(); ++ci) {
    const Entry& e = roster[ci];
    const std::vector<faults::Fault> universe =
        faults::generate_fault_list(e.ckt, {});
    const std::vector<logic::Pattern> patterns =
        random_patterns(e.ckt, 128, 17 + ci);
    total_faults += universe.size();

    // ---- Before: interpreted engine (context build + run, all walking
    // GateInst records).
    const auto t_before = Clock::now();
    const interp::Context ictx = interp::build_context(e.ckt, patterns);
    const std::vector<faults::DetectionRecord> before =
        interp::run_range(e.ckt, ictx, universe, options);
    const double before_s = seconds_since(t_before);

    // ---- After: the library path (compiled core), context build
    // included.
    const faults::FaultSimulator fsim(e.ckt);
    const auto t_after = Clock::now();
    const faults::EvalContext ctx(e.ckt, patterns);
    const faults::FaultSimReport after = fsim.run(ctx, universe, options);
    const double after_s = seconds_since(t_after);

    bool circuit_identical = after.records.size() == before.size();
    for (std::size_t i = 0; circuit_identical && i < before.size(); ++i)
      circuit_identical = records_identical(before[i], after.records[i]);
    identical = identical && circuit_identical;

    const double speedup = after_s > 0.0 ? before_s / after_s : 0.0;
    std::cout << e.name << ": " << universe.size() << " faults, "
              << before_s * 1e3 << " ms -> " << after_s * 1e3 << " ms ("
              << speedup << "x, "
              << (circuit_identical ? "bit-identical" : "MISMATCH") << ")\n";

    if (ci != 0) per_circuit_json += ",";
    per_circuit_json += "{\"circuit\":\"" + e.name +
                        "\",\"faults\":" + std::to_string(universe.size()) +
                        ",\"before_s\":" + std::to_string(before_s) +
                        ",\"after_s\":" + std::to_string(after_s) +
                        ",\"speedup\":" + std::to_string(speedup) + "}";
    before_total += before_s;
    after_total += after_s;
  }
  per_circuit_json += "]";

  const double speedup =
      after_total > 0.0 ? before_total / after_total : 0.0;
  std::cout << "roster: " << before_total * 1e3 << " ms -> "
            << after_total * 1e3 << " ms, speedup " << speedup
            << "x, records "
            << (identical ? "bit-identical" : "MISMATCH") << "\n\n";

  json_out =
      "{\"bench\":\"compiled\",\"faults\":" + std::to_string(total_faults) +
      ",\"patterns\":128,\"before_s\":" + std::to_string(before_total) +
      ",\"after_s\":" + std::to_string(after_total) +
      ",\"speedup\":" + std::to_string(speedup) +
      ",\"identical\":" + (identical ? "true" : "false") +
      ",\"threshold\":1.5,\"circuits\":" + per_circuit_json + "}";

  return identical && speedup >= 1.5 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Leg 3: the vectorized packed core (multi-fault batched line kernel +
// SoA transistor planes + SIMD widening) vs the PR-5 single-fault packed
// path.  The universe is every packed-eligible fault: all line faults plus
// every transistor fault with a purely binary dictionary.  Floating and
// marginal-row faults take the identical retained-state serial path under
// either configuration and are excluded — they would only dilute the
// packed-path measurement.
//
// "Before" is the PR-5 shape: line faults through the library's
// single-fault path (batch_line_faults=false — one init_packed +
// eval_packed_line per fault per 64-pattern batch with fault dropping),
// transistor faults through a bench-local replica of the PR-5
// simulate_transistor_packed (one init_packed + eval_packed_faulty per
// batch; that library body now runs the plane kernel, so the word-at-a-
// time walk is frozen here, mirroring the interp:: replicas above).

int run_batched_leg(std::string& json_out) {
  struct Entry {
    std::string name;
    logic::Circuit ckt;
  };
  std::vector<Entry> roster;
  roster.push_back({"parity_tree_48", logic::parity_tree(48)});
  roster.push_back({"ripple_adder_8", logic::ripple_adder(8)});
  roster.push_back({"alu_slice", logic::alu_slice()});
  roster.push_back({"tmr_voter_5", logic::tmr_voter(5)});
  roster.push_back({"c17", logic::c17()});

  // Work reduction off on both sides: this leg isolates the batch-kernel
  // win; the dropping leg below measures the work-reduction layer on top.
  faults::FaultSimOptions single;
  single.batch_line_faults = false;
  single.drop_detected = false;
  single.critical_path_tracing = false;
  faults::FaultSimOptions batched;  // batch_line_faults=true default
  batched.drop_detected = false;
  batched.critical_path_tracing = false;

  const logic::simd::Backend backend = logic::simd::compiled_backend();
  const bool have_simd = backend != logic::simd::Backend::kPortable;

  double before_total = 0.0;
  double portable_total = 0.0;
  double simd_total = 0.0;
  bool identical = true;
  std::size_t total_faults = 0;
  std::size_t total_excluded = 0;
  faults::LineBatchStats stats;
  std::string per_circuit_json = "[";

  std::cout << "=== Vectorized packed core vs PR-5 single-fault packed path "
            << "(line + binary-dictionary transistor faults, 4096 patterns, "
            << "1 thread, backend " << logic::simd::backend_name(backend)
            << ") ===\n";

  for (std::size_t ci = 0; ci < roster.size(); ++ci) {
    const Entry& e = roster[ci];
    // Packed-eligible universe, line faults first so one run_range
    // sub-range covers exactly the line portion.  Cross-class collapse is
    // off so the kernel workload stays comparable across commits — the
    // collapse mostly removes binary-dictionary stuck-ons, i.e. exactly
    // the plane-kernel work this leg measures.
    faults::FaultListOptions flo;
    flo.cross_class_collapse = false;
    const std::vector<faults::Fault> all =
        faults::generate_fault_list(e.ckt, flo);
    std::vector<faults::Fault> universe;
    std::vector<faults::Fault> trans;
    std::size_t excluded = 0;
    for (const faults::Fault& f : all) {
      if (f.site != faults::FaultSite::kGateTransistor) {
        universe.push_back(f);
        continue;
      }
      const gates::FaultAnalysis& fa = gates::DictionaryCache::global().lookup(
          e.ckt.gate(f.gate).kind, f.cell_fault);
      if (fa.compiled_binary)
        trans.push_back(f);
      else
        ++excluded;
    }
    const std::size_t n_line = universe.size();
    universe.insert(universe.end(), trans.begin(), trans.end());
    const std::vector<logic::Pattern> patterns =
        random_patterns(e.ckt, 4096, 29 + ci);
    total_faults += universe.size();
    total_excluded += excluded;

    const faults::FaultSimulator fsim(e.ckt);
    const logic::Simulator lsim(e.ckt);
    const logic::CompiledCircuit& cc = lsim.compiled();
    const faults::EvalContext ctx(e.ckt, patterns);  // shared by all paths

    // PR-5 shape over the whole universe: library single-fault line path,
    // bench-frozen word-at-a-time transistor substitution.
    const auto run_before = [&]() {
      std::vector<faults::DetectionRecord> recs =
          fsim.run_range(ctx, universe, 0, n_line, single);
      recs.resize(universe.size());
      std::vector<std::uint64_t> values;
      for (std::size_t i = n_line; i < universe.size(); ++i) {
        const faults::Fault& f = universe[i];
        const gates::FaultAnalysis& fa =
            gates::DictionaryCache::global().lookup(e.ckt.gate(f.gate).kind,
                                                    f.cell_fault);
        faults::DetectionRecord rec;
        for (std::size_t bi = 0; bi < ctx.batches().size(); ++bi) {
          const faults::EvalContext::Batch& batch = ctx.batches()[bi];
          cc.init_packed(batch.pi_words, values);
          const std::uint64_t cont =
              cc.eval_packed_faulty(values, f.gate, fa);
          std::uint64_t diff = 0;
          for (const logic::NetId po : e.ckt.primary_outputs())
            diff |= ctx.good_plane(po)[bi] ^
                    values[static_cast<std::size_t>(po)];
          diff &= batch.active;
          const std::uint64_t iddq = cont & batch.active;
          if (diff != 0) rec.detected_output = true;
          if (iddq != 0) rec.detected_iddq = true;
          const std::uint64_t hit = diff | iddq;
          if (hit != 0 && rec.first_pattern < 0)
            rec.first_pattern =
                static_cast<int>(batch.base) + __builtin_ctzll(hit);
        }
        recs[i] = rec;
      }
      return recs;
    };

    // Pilot run calibrates a repetition count so the small roster entries
    // (c17 is 6 gates) measure well above timer resolution.  Timing then
    // interleaves the three paths over several rounds and keeps each
    // path's minimum: this box shows 2x wall-clock swings between
    // back-to-back identical runs, and the minimum of interleaved blocks
    // is the standard noise-resistant estimate of uncontended cost.
    auto t0 = Clock::now();
    const std::vector<faults::DetectionRecord> reference = run_before();
    const double pilot_s = seconds_since(t0);
    const int reps = std::max(
        1, static_cast<int>(std::ceil(0.03 / std::max(pilot_s, 1e-7))));

    std::vector<faults::DetectionRecord> portable_records;
    std::vector<faults::DetectionRecord> simd_records;
    faults::LineBatchStats circuit_stats;
    {
      logic::simd::force_portable(true);
      faults::LineBatchStats first_stats;
      portable_records = fsim.run_range(ctx, universe, 0, universe.size(),
                                        batched, &first_stats);
      circuit_stats = first_stats;
      logic::simd::force_portable(false);
      simd_records = fsim.run_range(ctx, universe, 0, universe.size(), batched);
    }
    double before_s = 1e30;
    double portable_s = 1e30;
    double simd_s = 1e30;
    for (int round = 0; round < 9; ++round) {
      t0 = Clock::now();
      for (int r = 0; r < reps; ++r) (void)run_before();
      before_s = std::min(before_s, seconds_since(t0) / reps);

      logic::simd::force_portable(true);
      t0 = Clock::now();
      for (int r = 0; r < reps; ++r)
        (void)fsim.run_range(ctx, universe, 0, universe.size(), batched);
      portable_s = std::min(portable_s, seconds_since(t0) / reps);

      logic::simd::force_portable(false);
      t0 = Clock::now();
      for (int r = 0; r < reps; ++r)
        (void)fsim.run_range(ctx, universe, 0, universe.size(), batched);
      simd_s = std::min(simd_s, seconds_since(t0) / reps);
    }
    stats.merge(circuit_stats);

    bool circuit_identical =
        portable_records.size() == reference.size() &&
        simd_records.size() == reference.size();
    for (std::size_t i = 0; circuit_identical && i < reference.size(); ++i)
      circuit_identical =
          records_identical(reference[i], portable_records[i]) &&
          records_identical(reference[i], simd_records[i]);
    identical = identical && circuit_identical;

    const double speedup = portable_s > 0.0 ? before_s / portable_s : 0.0;
    const double simd_speedup = simd_s > 0.0 ? portable_s / simd_s : 0.0;
    std::cout << e.name << ": " << n_line << " line + "
              << universe.size() - n_line << " transistor faults ("
              << excluded << " serial excluded), " << before_s * 1e6
              << " us -> " << portable_s * 1e6 << " us portable (" << speedup
              << "x) -> " << simd_s * 1e6 << " us simd (" << simd_speedup
              << "x), "
              << (circuit_identical ? "bit-identical" : "MISMATCH") << "\n";

    if (ci != 0) per_circuit_json += ",";
    per_circuit_json += "{\"circuit\":\"" + e.name +
                        "\",\"faults\":" + std::to_string(universe.size()) +
                        ",\"line_faults\":" + std::to_string(n_line) +
                        ",\"serial_excluded\":" + std::to_string(excluded) +
                        ",\"reps\":" + std::to_string(reps) +
                        ",\"before_s\":" + std::to_string(before_s) +
                        ",\"batched_portable_s\":" + std::to_string(portable_s) +
                        ",\"batched_simd_s\":" + std::to_string(simd_s) +
                        ",\"speedup\":" + std::to_string(speedup) +
                        ",\"simd_speedup\":" + std::to_string(simd_speedup) +
                        "}";
    before_total += before_s;
    portable_total += portable_s;
    simd_total += simd_s;
  }
  per_circuit_json += "]";

  const double speedup =
      portable_total > 0.0 ? before_total / portable_total : 0.0;
  const double simd_speedup =
      simd_total > 0.0 ? portable_total / simd_total : 0.0;
  const double lane_fill =
      stats.groups > 0
          ? static_cast<double>(stats.lane_slots) /
                static_cast<double>(stats.groups *
                                    logic::CompiledCircuit::kBatchLanes)
          : 0.0;
  std::cout << "roster: " << before_total * 1e3 << " ms -> "
            << portable_total * 1e3 << " ms portable (" << speedup
            << "x) -> " << simd_total * 1e3 << " ms simd (" << simd_speedup
            << "x), lane fill " << lane_fill << ", records "
            << (identical ? "bit-identical" : "MISMATCH") << "\n\n";

  json_out =
      std::string("{\"patterns\":4096,\"backend\":\"") +
      logic::simd::backend_name(backend) +
      "\",\"faults\":" + std::to_string(total_faults) +
      ",\"serial_excluded\":" + std::to_string(total_excluded) +
      ",\"before_s\":" + std::to_string(before_total) +
      ",\"batched_portable_s\":" + std::to_string(portable_total) +
      ",\"batched_simd_s\":" + std::to_string(simd_total) +
      ",\"speedup\":" + std::to_string(speedup) +
      ",\"simd_speedup\":" + std::to_string(simd_speedup) +
      ",\"lane_fill\":" + std::to_string(lane_fill) +
      ",\"kernel_words\":" + std::to_string(stats.words) +
      ",\"identical\":" + (identical ? "true" : "false") +
      ",\"threshold\":2.0,\"simd_threshold\":1.15,\"simd_gated\":" +
      (have_simd ? "true" : "false") +
      ",\"circuits\":" + per_circuit_json + "}";

  const bool simd_ok = !have_simd || simd_speedup >= 1.15;
  return identical && speedup >= 2.0 && simd_ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Leg 4: the work-reduction layer (fault dropping + critical-path tracing)
// vs the PR-7 batched path it sits on.  Both sides run the same batched
// kernels over the same packed-eligible universe; "before" pins the
// work-reduction switches off, "after" is the library default (dropping
// on, CPT on, full detection mode).  The records must stay bit-identical —
// dropping only skips work whose outcome is already decided, and CPT is an
// exact analytical shortcut on its qualified cones.  Gate: >= 1.5x.

int run_dropping_leg(std::string& json_out) {
  struct Entry {
    std::string name;
    logic::Circuit ckt;
  };
  std::vector<Entry> roster;
  roster.push_back({"parity_tree_48", logic::parity_tree(48)});
  roster.push_back({"ripple_adder_8", logic::ripple_adder(8)});
  roster.push_back({"alu_slice", logic::alu_slice()});
  roster.push_back({"tmr_voter_5", logic::tmr_voter(5)});
  roster.push_back({"c17", logic::c17()});

  faults::FaultSimOptions pr7;  // the batched path, work reduction off
  pr7.drop_detected = false;
  pr7.critical_path_tracing = false;
  faults::FaultSimOptions reduced;  // the shipped defaults
  reduced.drop_detected = true;
  reduced.critical_path_tracing = true;

  double before_total = 0.0;
  double after_total = 0.0;
  bool identical = true;
  std::size_t total_faults = 0;
  faults::LineBatchStats stats;
  std::string per_circuit_json = "[";

  std::cout << "=== Work reduction (fault dropping + critical-path tracing) "
            << "vs the batched path (line + binary-dictionary transistor "
            << "faults, 4096 patterns, 1 thread) ===\n";

  for (std::size_t ci = 0; ci < roster.size(); ++ci) {
    const Entry& e = roster[ci];
    // Same packed-eligible universe shape as the batched leg: line faults
    // first, then every transistor fault with a purely binary dictionary.
    const std::vector<faults::Fault> all =
        faults::generate_fault_list(e.ckt, {});
    std::vector<faults::Fault> universe;
    std::vector<faults::Fault> trans;
    for (const faults::Fault& f : all) {
      if (f.site != faults::FaultSite::kGateTransistor) {
        universe.push_back(f);
        continue;
      }
      const gates::FaultAnalysis& fa = gates::DictionaryCache::global().lookup(
          e.ckt.gate(f.gate).kind, f.cell_fault);
      if (fa.compiled_binary) trans.push_back(f);
    }
    universe.insert(universe.end(), trans.begin(), trans.end());
    const std::vector<logic::Pattern> patterns =
        random_patterns(e.ckt, 4096, 43 + ci);
    total_faults += universe.size();

    const faults::FaultSimulator fsim(e.ckt);
    const faults::EvalContext ctx(e.ckt, patterns);

    // Correctness first: one run of each side, record for record.
    const std::vector<faults::DetectionRecord> reference =
        fsim.run_range(ctx, universe, 0, universe.size(), pr7);
    faults::LineBatchStats circuit_stats;
    const std::vector<faults::DetectionRecord> after = fsim.run_range(
        ctx, universe, 0, universe.size(), reduced, &circuit_stats);
    stats.merge(circuit_stats);

    bool circuit_identical = after.size() == reference.size();
    for (std::size_t i = 0; circuit_identical && i < reference.size(); ++i)
      circuit_identical = records_identical(reference[i], after[i]);
    identical = identical && circuit_identical;

    // Pilot-calibrated repetitions, min over interleaved rounds (same
    // noise discipline as the batched leg).
    auto t0 = Clock::now();
    (void)fsim.run_range(ctx, universe, 0, universe.size(), pr7);
    const double pilot_s = seconds_since(t0);
    const int reps = std::max(
        1, static_cast<int>(std::ceil(0.03 / std::max(pilot_s, 1e-7))));

    double before_s = 1e30;
    double after_s = 1e30;
    for (int round = 0; round < 9; ++round) {
      t0 = Clock::now();
      for (int r = 0; r < reps; ++r)
        (void)fsim.run_range(ctx, universe, 0, universe.size(), pr7);
      before_s = std::min(before_s, seconds_since(t0) / reps);

      t0 = Clock::now();
      for (int r = 0; r < reps; ++r)
        (void)fsim.run_range(ctx, universe, 0, universe.size(), reduced);
      after_s = std::min(after_s, seconds_since(t0) / reps);
    }

    const double speedup = after_s > 0.0 ? before_s / after_s : 0.0;
    std::cout << e.name << ": " << universe.size() << " faults, "
              << before_s * 1e6 << " us -> " << after_s * 1e6 << " us ("
              << speedup << "x, cpt " << circuit_stats.cpt_faults << "/"
              << circuit_stats.faults << " line faults, "
              << (circuit_identical ? "bit-identical" : "MISMATCH") << ")\n";

    if (ci != 0) per_circuit_json += ",";
    per_circuit_json += "{\"circuit\":\"" + e.name +
                        "\",\"faults\":" + std::to_string(universe.size()) +
                        ",\"cpt_line_faults\":" +
                        std::to_string(circuit_stats.cpt_faults) +
                        ",\"reps\":" + std::to_string(reps) +
                        ",\"before_s\":" + std::to_string(before_s) +
                        ",\"after_s\":" + std::to_string(after_s) +
                        ",\"speedup\":" + std::to_string(speedup) + "}";
    before_total += before_s;
    after_total += after_s;
  }
  per_circuit_json += "]";

  const double speedup =
      after_total > 0.0 ? before_total / after_total : 0.0;
  std::cout << "roster: " << before_total * 1e3 << " ms -> "
            << after_total * 1e3 << " ms, speedup " << speedup
            << "x, records "
            << (identical ? "bit-identical" : "MISMATCH") << "\n\n";

  json_out =
      "{\"patterns\":4096,\"faults\":" + std::to_string(total_faults) +
      ",\"before_s\":" + std::to_string(before_total) +
      ",\"after_s\":" + std::to_string(after_total) +
      ",\"speedup\":" + std::to_string(speedup) +
      ",\"cpt_line_faults\":" + std::to_string(stats.cpt_faults) +
      ",\"identical\":" + (identical ? "true" : "false") +
      ",\"threshold\":1.5,\"circuits\":" + per_circuit_json + "}";

  return identical && speedup >= 1.5 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Leg 5: circuit scale through the ingestion front end.  Everything the
// engine sees went through write_bench -> read_bench, so foreign-gate
// decomposition, net-name mangling, and PI/PO ordering are all on the
// measured path.

int run_large_circuit_leg(std::string& json_out) {
  const logic::Circuit native = logic::alu_array(64);
  const logic::Circuit ckt =
      logic::read_bench_string(logic::to_bench_string(native));
  const bool big_enough = ckt.gate_count() >= 1000;

  std::cout << "=== Large circuit via .bench ingestion (alu_array_64: "
            << native.gate_count() << " native -> " << ckt.gate_count()
            << " parsed gates) ===\n";

  // Functional check: the parsed circuit is the generator's circuit.
  bool equivalent = ckt.primary_inputs().size() ==
                        native.primary_inputs().size() &&
                    ckt.primary_outputs().size() ==
                        native.primary_outputs().size();
  if (equivalent) {
    const logic::Simulator sim_native(native);
    const logic::Simulator sim_parsed(ckt);
    const std::vector<logic::Pattern> checks = random_patterns(native, 32, 71);
    for (const logic::Pattern& p : checks) {
      const logic::SimResult ra = sim_native.simulate(p);
      const logic::SimResult rb = sim_parsed.simulate(p);
      for (std::size_t k = 0;
           equivalent && k < native.primary_outputs().size(); ++k)
        equivalent = ra.value(native.primary_outputs()[k]) ==
                     rb.value(ckt.primary_outputs()[k]);
      if (!equivalent) break;
    }
  }

  // Five-class campaign (line stuck-at + polarity n/p + stuck-open +
  // stuck-on), byte-identical stable JSON across thread counts.
  std::string reference_json;
  bool campaign_identical = true;
  std::size_t campaign_faults = 0;
  double campaign_s = 0.0;
  for (const int threads : {1, 2, 8}) {
    engine::CampaignSpec spec;
    spec.jobs.push_back({"alu_array_64_bench", ckt});
    spec.patterns.kind = engine::PatternSourceSpec::Kind::kRandom;
    spec.patterns.random_count = 128;
    spec.seed = 97;
    spec.threads = threads;
    const auto t0 = Clock::now();
    const engine::CampaignReport report = engine::run_campaign(spec);
    if (threads == 1) {
      campaign_s = seconds_since(t0);
      reference_json = report.to_json();
      campaign_faults = engine::build_universe(ckt, spec.models).size();
    } else {
      campaign_identical =
          campaign_identical && report.to_json() == reference_json;
    }
  }

  // Perf gate at scale: batched line kernel vs the single-fault packed
  // walk (work reduction off on both sides, as in the batched leg), on a
  // slice of the packed-eligible universe.
  faults::FaultSimOptions single;
  single.batch_line_faults = false;
  single.drop_detected = false;
  single.critical_path_tracing = false;
  faults::FaultSimOptions batched;
  batched.batch_line_faults = true;
  batched.drop_detected = false;
  batched.critical_path_tracing = false;

  const std::vector<faults::Fault> all = faults::generate_fault_list(ckt, {});
  std::vector<faults::Fault> universe;
  for (const faults::Fault& f : all) {
    if (f.site != faults::FaultSite::kGateTransistor) {
      universe.push_back(f);
      continue;
    }
    const gates::FaultAnalysis& fa = gates::DictionaryCache::global().lookup(
        ckt.gate(f.gate).kind, f.cell_fault);
    if (fa.compiled_binary) universe.push_back(f);
  }
  const std::size_t slice = std::min<std::size_t>(universe.size(), 1536);
  const std::vector<logic::Pattern> patterns = random_patterns(ckt, 256, 73);
  const faults::FaultSimulator fsim(ckt);
  const faults::EvalContext ctx(ckt, patterns);

  const std::vector<faults::DetectionRecord> reference =
      fsim.run_range(ctx, universe, 0, slice, single);
  const std::vector<faults::DetectionRecord> after =
      fsim.run_range(ctx, universe, 0, slice, batched);
  bool identical = after.size() == reference.size();
  for (std::size_t i = 0; identical && i < reference.size(); ++i)
    identical = records_identical(reference[i], after[i]);

  auto t0 = Clock::now();
  (void)fsim.run_range(ctx, universe, 0, slice, batched);
  const double pilot_s = seconds_since(t0);
  const int reps = std::max(
      1, static_cast<int>(std::ceil(0.03 / std::max(pilot_s, 1e-7))));

  double before_s = 1e30;
  double after_s = 1e30;
  for (int round = 0; round < 9; ++round) {
    t0 = Clock::now();
    for (int r = 0; r < reps; ++r)
      (void)fsim.run_range(ctx, universe, 0, slice, single);
    before_s = std::min(before_s, seconds_since(t0) / reps);

    t0 = Clock::now();
    for (int r = 0; r < reps; ++r)
      (void)fsim.run_range(ctx, universe, 0, slice, batched);
    after_s = std::min(after_s, seconds_since(t0) / reps);
  }
  const double speedup = after_s > 0.0 ? before_s / after_s : 0.0;

  std::cout << "campaign: " << campaign_faults << " classified faults, "
            << campaign_s * 1e3 << " ms at 1 thread, 1/2/8-thread JSON "
            << (campaign_identical ? "byte-identical" : "MISMATCH") << "\n";
  std::cout << "batched kernel: " << slice << " faults x 256 patterns, "
            << before_s * 1e3 << " ms -> " << after_s * 1e3 << " ms ("
            << speedup << "x, "
            << (identical ? "bit-identical" : "MISMATCH") << ", generator "
            << (equivalent ? "equivalent" : "MISMATCH") << ")\n\n";

  json_out =
      "{\"circuit\":\"alu_array_64_bench\",\"gates\":" +
      std::to_string(ckt.gate_count()) +
      ",\"native_gates\":" + std::to_string(native.gate_count()) +
      ",\"campaign_faults\":" + std::to_string(campaign_faults) +
      ",\"campaign_s\":" + std::to_string(campaign_s) +
      ",\"threads_identical\":" + (campaign_identical ? "true" : "false") +
      ",\"generator_equivalent\":" + (equivalent ? "true" : "false") +
      ",\"bench_faults\":" + std::to_string(slice) +
      ",\"before_s\":" + std::to_string(before_s) +
      ",\"after_s\":" + std::to_string(after_s) +
      ",\"speedup\":" + std::to_string(speedup) +
      ",\"identical\":" + (identical ? "true" : "false") +
      ",\"threshold\":1.5}";

  return big_enough && equivalent && campaign_identical && identical &&
                 speedup >= 1.5
             ? 0
             : 1;
}

}  // namespace

int main() {
  const int context_rc = run_context_leg();
  std::string compiled_json;
  std::string batched_json;
  std::string dropping_json;
  std::string large_json;
  const int compiled_rc = run_compiled_leg(compiled_json);
  const int batched_rc = run_batched_leg(batched_json);
  const int dropping_rc = run_dropping_leg(dropping_json);
  const int large_rc = run_large_circuit_leg(large_json);

  // One BENCH_compiled.json: the compiled-leg object with the batched,
  // dropping, and large-circuit legs merged in as sub-objects, so the
  // bench trajectory stays a single file per commit.
  const std::string json = compiled_json.substr(0, compiled_json.size() - 1) +
                           ",\"batched\":" + batched_json +
                           ",\"dropping\":" + dropping_json +
                           ",\"large_circuit\":" + large_json + "}";
  std::ofstream("BENCH_compiled.json") << json << "\n";
  std::cout << json << "\n";

  if (context_rc != 0) return context_rc;
  if (compiled_rc != 0) return compiled_rc;
  if (batched_rc != 0) return batched_rc;
  return dropping_rc != 0 ? dropping_rc : large_rc;
}
