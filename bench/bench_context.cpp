// Shared-evaluation-context speedup on the transistor-fault hot loop:
// "before" replays the seed algorithm (good machine re-simulated and the
// switch-level dictionary re-derived for every fault), "after" is the
// context path (good machine once per pattern set, memoized dictionaries,
// packed 64-pattern batches for purely binary dictionaries).  Detection
// records are cross-checked fault by fault — a speedup only counts when
// the answer is bit-identical.  The last line printed is a single JSON
// object for the bench trajectory; the same object is written to
// BENCH_context.json.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "faults/eval_context.hpp"
#include "faults/fault_sim.hpp"
#include "gates/fault_dictionary.hpp"
#include "logic/benchmarks.hpp"
#include "util/rng.hpp"

namespace {

using namespace cpsinw;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The seed's serial transistor-fault loop, verbatim: per fault, an ad-hoc
/// analyze_fault plus a fresh good-machine simulation per pattern.
faults::DetectionRecord seed_style_transistor(
    const logic::Circuit& ckt, const logic::Simulator& sim,
    const faults::Fault& fault, const std::vector<logic::Pattern>& patterns,
    const faults::FaultSimOptions& options) {
  const logic::GateFault gf{fault.gate, fault.cell_fault};
  const gates::FaultAnalysis fa =
      gates::analyze_fault(ckt.gate(fault.gate).kind, fault.cell_fault);

  faults::DetectionRecord rec;
  std::vector<logic::LogicV> state;
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    const logic::Pattern& p = patterns[pi];
    const logic::SimResult good = sim.simulate(p);
    const logic::SimResult bad = sim.simulate_faulty_with(
        p, gf, fa, options.sequential_patterns && !state.empty() ? &state
                                                                 : nullptr);
    if (options.sequential_patterns) state = bad.net_values;

    bool hit = false;
    if (bad.iddq_flag && options.observe_iddq) {
      rec.detected_iddq = true;
      hit = true;
    }
    for (const logic::NetId po : ckt.primary_outputs()) {
      const logic::LogicV g = good.value(po);
      const logic::LogicV b = bad.value(po);
      if (is_binary(g) && is_binary(b) && g != b) {
        rec.detected_output = true;
        hit = true;
      } else if (is_binary(g) && !is_binary(b)) {
        rec.potential = true;
      }
    }
    if (hit && rec.first_pattern < 0)
      rec.first_pattern = static_cast<int>(pi);
  }
  return rec;
}

}  // namespace

int main() {
  const logic::Circuit ckt = logic::parity_tree(64);

  faults::FaultListOptions flo;
  flo.include_line_stuck_at = false;
  flo.include_transistor_faults = true;
  const std::vector<faults::Fault> universe = generate_fault_list(ckt, flo);

  util::SplitMix64 rng(1);
  std::vector<logic::Pattern> patterns;
  for (int k = 0; k < 128; ++k) {
    logic::Pattern p(ckt.primary_inputs().size());
    for (logic::LogicV& v : p) v = logic::from_bool(rng.chance(0.5));
    patterns.push_back(std::move(p));
  }

  const faults::FaultSimOptions options;
  const double work = static_cast<double>(universe.size()) *
                      static_cast<double>(patterns.size());

  std::cout << "=== Shared-context transistor-fault throughput: "
            << "parity_tree(64), " << universe.size() << " faults x "
            << patterns.size() << " patterns, 1 thread ===\n";

  // ---- Before: seed algorithm, O(faults x patterns) good-machine work.
  const logic::Simulator sim(ckt);
  std::vector<faults::DetectionRecord> before_records;
  const auto t_before = Clock::now();
  for (const faults::Fault& f : universe)
    before_records.push_back(
        seed_style_transistor(ckt, sim, f, patterns, options));
  const double before_s = seconds_since(t_before);

  // ---- After: one context (includes its build cost), context run.
  const faults::FaultSimulator fsim(ckt);
  const auto t_after = Clock::now();
  const faults::EvalContext ctx(ckt, patterns);
  const faults::FaultSimReport after = fsim.run(ctx, universe, options);
  const double after_s = seconds_since(t_after);

  bool identical = after.records.size() == before_records.size();
  for (std::size_t i = 0; identical && i < before_records.size(); ++i) {
    const faults::DetectionRecord& a = before_records[i];
    const faults::DetectionRecord& b = after.records[i];
    identical = a.detected_output == b.detected_output &&
                a.detected_iddq == b.detected_iddq &&
                a.potential == b.potential &&
                a.first_pattern == b.first_pattern;
  }

  const double before_rate = before_s > 0.0 ? work / before_s : 0.0;
  const double after_rate = after_s > 0.0 ? work / after_s : 0.0;
  const double speedup = after_s > 0.0 ? before_s / after_s : 0.0;

  std::cout << "before (seed serial):   " << before_s * 1e3 << " ms, "
            << before_rate << " faults x patterns / s\n";
  std::cout << "after (shared context): " << after_s * 1e3 << " ms, "
            << after_rate << " faults x patterns / s\n";
  std::cout << "speedup: " << speedup << "x, records "
            << (identical ? "bit-identical" : "MISMATCH") << "\n\n";

  const std::string json =
      "{\"bench\":\"context\",\"circuit\":\"parity_tree_64\",\"faults\":" +
      std::to_string(universe.size()) +
      ",\"patterns\":" + std::to_string(patterns.size()) +
      ",\"before_s\":" + std::to_string(before_s) +
      ",\"after_s\":" + std::to_string(after_s) +
      ",\"before_fault_patterns_per_s\":" + std::to_string(before_rate) +
      ",\"after_fault_patterns_per_s\":" + std::to_string(after_rate) +
      ",\"speedup\":" + std::to_string(speedup) +
      ",\"identical\":" + (identical ? "true" : "false") + "}";
  std::ofstream("BENCH_context.json") << json << "\n";
  std::cout << json << "\n";

  return identical && speedup >= 2.0 ? 0 : 1;
}
