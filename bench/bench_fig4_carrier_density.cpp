// Reproduces paper Fig. 4: electron-density distribution of the n-type
// TIG-SiNWFET with and without a GOS at each gate dielectric.
#include <iostream>

#include "core/experiments.hpp"
#include "util/table.hpp"

int main() {
  using namespace cpsinw;
  const core::Fig4Data data = core::run_fig4();

  std::cout << "=== Fig. 4: channel electron density with/without GOS "
               "===\n\n";
  util::AsciiTable table({"Case", "measured n_e [cm^-3]",
                          "paper n_e [cm^-3]", "measured/paper"});
  for (const core::Fig4Case& c : data.cases) {
    table.row()
        .cell(c.label)
        .sci(c.reported_cm3, 3)
        .sci(c.paper_cm3, 3)
        .num(c.reported_cm3 / c.paper_cm3, 3);
  }
  table.print(std::cout);

  std::cout << "\n--- Density profiles along the channel (x = 0 at the "
               "source contact; PGS @ 11 nm, CG @ 51 nm, PGD @ 91 nm) "
               "---\n\n";
  for (const core::Fig4Case& c : data.cases) {
    // Print a decimated profile (every 10th sample) for terminal use.
    std::cout << "# " << c.label << '\n';
    for (std::size_t i = 0; i < c.profile.size(); i += 10) {
      std::cout << "  x=" << c.profile.x()[i] << " nm  n_e="
                << c.profile.column(0)[i] << " cm^-3\n";
    }
    std::cout << '\n';
  }
  return 0;
}
