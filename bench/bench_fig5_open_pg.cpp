// Reproduces paper Fig. 5: leakage-delay variation versus the floating-node
// voltage V_cut for open polarity gates (PGS / PGD cuts) on the pull-up
// (t1) and pull-down (t3) transistors of INV, NAND2 and XOR2 (FO4 loads).
//
// Paper anchors: delays stay flat up to V_cut ~ 0.3 V, the injection-side
// cut rises ~7x by 0.56 V and the device is effectively stuck-open beyond;
// leakage grows by orders of magnitude as the cut enables the opposite
// conduction mode; the XOR pull-up case keeps its function (TG redundancy)
// while leakage spans ~6 decades; the NAND t3 leakage stays clamped by the
// series partner t4.
#include <cmath>
#include <iostream>

#include "core/experiments.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace cpsinw;
  core::Fig5Options options;
  options.sweep_points = 13;
  const core::Fig5Data data = core::run_fig5(options);

  std::cout << "=== Fig. 5: leakage-delay vs V_cut (floating polarity "
               "gates) ===\n";
  for (const core::Fig5Curve& curve : data.curves) {
    std::cout << "\n--- " << gates::to_string(curve.gate) << " "
              << curve.transistor_label << ", cut on "
              << gates::to_string(curve.cut_terminal) << " ---\n";
    std::cout << "    nominal delay: "
              << util::format_fixed(util::to_ps(curve.nominal_delay_s), 1)
              << " ps, nominal leakage: "
              << util::format_fixed(util::to_na(curve.nominal_leakage_a), 3)
              << " nA\n";
    util::AsciiTable table({"Vcut [V]", "leakage [nA]", "delay [ps]",
                            "delay/nominal", "status"});
    for (const core::Fig5Point& p : curve.points) {
      const bool sof = p.transition_failed;
      table.row()
          .num(p.vcut, 2)
          .num(util::to_na(p.leakage_a), 3)
          .cell(sof ? "-" : util::format_fixed(util::to_ps(p.delay_s), 1))
          .cell(sof ? "-"
                    : util::format_fixed(p.delay_s / curve.nominal_delay_s,
                                         2))
          .cell(sof ? "STUCK-OPEN" : "switching");
    }
    table.print(std::cout);
  }

  std::cout << "\nReading guide (paper Sec. V-A):\n"
               "  * departures from the nominal PG bias first cost delay "
               "(delay-fault region),\n"
               "  * then enable the opposite conduction mode (stuck-on / "
               "IDDQ region),\n"
               "  * and beyond ~0.56 V from nominal the transition fails "
               "entirely (SOF region).\n";
  return 0;
}
