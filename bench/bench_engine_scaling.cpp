// Campaign-engine scaling across execution backends: throughput (sampled
// faults x patterns per second) of the same parity_tree(64) campaign on
// the inline reference, the thread pool at 1/2/4/8 threads, the
// subprocess worker backend, and a loopback remote shard server.  The
// deterministic JSON of every run is checked against the inline reference
// — a scaling number only counts if the answer is bit-identical.  Results
// land in BENCH_engine_scaling.json (also the last stdout line) so the
// bench trajectory captures executor overhead per backend over time.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/net.hpp"
#include "engine/thread_pool.hpp"
#include "logic/benchmarks.hpp"
#include "util/table.hpp"

namespace {

std::string worker_path() {
#ifdef CPSINW_SHARD_WORKER_PATH
  return CPSINW_SHARD_WORKER_PATH;
#else
  return {};
#endif
}

std::string server_path() {
#ifdef CPSINW_SHARD_SERVER_PATH
  return CPSINW_SHARD_SERVER_PATH;
#else
  return {};
#endif
}

struct RunConfig {
  cpsinw::engine::ExecutorBackend backend;
  int threads;
};

/// JSON fragment with the executor-side latency snapshot of one run:
/// queue-wait p50/p95 and the shard-execution histogram (p50/p95 plus raw
/// buckets, so the trajectory can spot distribution shifts, not just
/// median drift).
std::string telemetry_json(const cpsinw::engine::CampaignReport& report) {
  using cpsinw::engine::telemetry::HistogramValue;
  const std::string& backend = report.timing.backend;
  const HistogramValue* queue =
      report.telemetry.find_histogram(backend + ".queue_wait_s");
  const HistogramValue* exec =
      report.telemetry.find_histogram(backend + ".shard_exec_s");
  std::string out = "{";
  if (queue != nullptr) {
    out += "\"queue_wait_p50_s\":" + std::to_string(queue->quantile_s(0.5)) +
           ",\"queue_wait_p95_s\":" + std::to_string(queue->quantile_s(0.95)) +
           ",";
  }
  if (exec != nullptr) {
    out += "\"shard_exec_p50_s\":" + std::to_string(exec->quantile_s(0.5)) +
           ",\"shard_exec_p95_s\":" + std::to_string(exec->quantile_s(0.95)) +
           ",\"shard_exec_count\":" + std::to_string(exec->count) +
           ",\"shard_exec_buckets\":[";
    for (std::size_t i = 0; i < exec->buckets.size(); ++i) {
      if (i != 0) out += ",";
      out += std::to_string(exec->buckets[i]);
    }
    out += "],";
  }
  if (out.back() == ',') out.pop_back();
  return out + "}";
}

std::string us(double seconds) {
  return std::to_string(seconds * 1e6);
}

}  // namespace

int main() {
  using namespace cpsinw;

  // One loopback shard server stands in for a remote host; the RAII
  // handle kills it at exit.
  std::unique_ptr<engine::net::LocalServerProcess> server;
  if (!server_path().empty()) {
    server = std::make_unique<engine::net::LocalServerProcess>(server_path());
    if (!server->ok()) {
      std::cout << "(shard server failed to start: " << server->error()
                << "; remote backend skipped)\n";
      server.reset();
    }
  }

  const auto make_spec = [&server](const RunConfig& cfg) {
    engine::CampaignSpec spec;
    spec.jobs.push_back({"parity_tree_64", logic::parity_tree(64)});
    spec.patterns.kind = engine::PatternSourceSpec::Kind::kRandom;
    spec.patterns.random_count = 128;
    spec.shard_size = 32;
    spec.seed = 1;
    spec.threads = cfg.threads;
    spec.executor.backend = cfg.backend;
    if (cfg.backend == engine::ExecutorBackend::kSubprocess)
      spec.executor.worker_path = worker_path();
    if (cfg.backend == engine::ExecutorBackend::kRemote) {
      spec.executor.endpoints = {server->endpoint()};
      // The reported thread count must be the real concurrency: lift the
      // per-endpoint cap so the single loopback endpoint can actually
      // serve cfg.threads shards at once.
      spec.executor.remote_max_in_flight = cfg.threads;
    }
    return spec;
  };

  std::cout << "=== Campaign-engine scaling: parity_tree(64), full CP fault "
               "universe, 128 random patterns, per-backend ===\n";
  std::cout << "hardware threads: " << engine::ThreadPool::hardware_threads()
            << "\n\n";

  std::vector<RunConfig> configs = {
      {engine::ExecutorBackend::kInline, 1},
      {engine::ExecutorBackend::kThreadPool, 1},
      {engine::ExecutorBackend::kThreadPool, 2},
      {engine::ExecutorBackend::kThreadPool, 4},
      {engine::ExecutorBackend::kThreadPool, 8},
  };
  if (!worker_path().empty())
    configs.push_back({engine::ExecutorBackend::kSubprocess,
                       engine::ThreadPool::hardware_threads()});
  else
    std::cout << "(no worker path compiled in: subprocess backend skipped)\n";
  if (server != nullptr)
    configs.push_back({engine::ExecutorBackend::kRemote,
                       engine::ThreadPool::hardware_threads()});

  // Warm-up run (page-faults, allocator) outside the measured set.
  (void)engine::run_campaign(make_spec(configs[0]));

  util::AsciiTable table({"backend", "threads", "shards", "wall [ms]",
                          "faults x patterns / s", "speedup vs inline",
                          "identical JSON"});
  std::string json_line;
  double wall_inline = 0.0;
  std::string reference_json;
  bool all_identical = true;

  util::AsciiTable latency_table(
      {"backend", "threads", "queue wait p50 [us]", "queue wait p95 [us]",
       "shard exec p50 [us]", "shard exec p95 [us]"});

  for (const RunConfig& cfg : configs) {
    engine::CampaignSpec spec = make_spec(cfg);
    // Collect the latency snapshot, but compare the *stable* JSON — the
    // telemetry block is runtime-dependent by design.
    spec.emit_telemetry = true;
    engine::CampaignReport report = engine::run_campaign(spec);
    report.emit_telemetry = false;
    const std::string stable = report.to_json(false);
    if (reference_json.empty()) {
      reference_json = stable;
      wall_inline = report.timing.wall_s;
    }
    const bool identical = stable == reference_json;
    all_identical = all_identical && identical;

    const double speedup =
        report.timing.wall_s > 0.0 ? wall_inline / report.timing.wall_s : 0.0;
    table.add_row({report.timing.backend, std::to_string(cfg.threads),
                   std::to_string(report.timing.shard_count),
                   std::to_string(report.timing.wall_s * 1e3),
                   std::to_string(report.timing.fault_patterns_per_s),
                   std::to_string(speedup), identical ? "yes" : "NO"});

    const engine::telemetry::HistogramValue* queue =
        report.telemetry.find_histogram(report.timing.backend +
                                        ".queue_wait_s");
    const engine::telemetry::HistogramValue* exec =
        report.telemetry.find_histogram(report.timing.backend +
                                        ".shard_exec_s");
    latency_table.add_row(
        {report.timing.backend, std::to_string(cfg.threads),
         queue != nullptr ? us(queue->quantile_s(0.5)) : "-",
         queue != nullptr ? us(queue->quantile_s(0.95)) : "-",
         exec != nullptr ? us(exec->quantile_s(0.5)) : "-",
         exec != nullptr ? us(exec->quantile_s(0.95)) : "-"});

    if (!json_line.empty()) json_line += ",";
    json_line += "{\"backend\":\"" + report.timing.backend +
                 "\",\"threads\":" + std::to_string(cfg.threads) +
                 ",\"wall_s\":" + std::to_string(report.timing.wall_s) +
                 ",\"fault_patterns_per_s\":" +
                 std::to_string(report.timing.fault_patterns_per_s) +
                 ",\"speedup_vs_inline\":" + std::to_string(speedup) +
                 ",\"identical\":" + (identical ? "true" : "false") +
                 ",\"telemetry\":" + telemetry_json(report) + "}";
  }
  table.print(std::cout);
  std::cout << "\nexecutor latency snapshot (telemetry registry):\n";
  latency_table.print(std::cout);

  const engine::CampaignReport ref = engine::run_campaign(
      make_spec({engine::ExecutorBackend::kInline, 1}));
  const engine::ClassStats totals = ref.totals();
  std::cout << "\nworkload: " << totals.total << " faults x "
            << ref.jobs[0].pattern_count << " patterns, coverage "
            << totals.coverage() << "\n";
  std::cout << "determinism: "
            << (all_identical
                    ? "all backends and thread counts bit-identical"
                    : "MISMATCH ACROSS BACKENDS")
            << "\n\n";

  // Instrumentation-overhead gate: full telemetry + span tracing on the
  // thread-pool leg must stay within 5% of the uninstrumented wall time
  // (plus a small absolute allowance — a leg this size runs in tens of
  // milliseconds, where scheduler noise dwarfs percentages).  Best-of-3
  // on both sides to measure the floor, not the jitter.
  const RunConfig overhead_cfg{engine::ExecutorBackend::kThreadPool, 4};
  double plain_s = 0.0, traced_s = 0.0;
  for (int i = 0; i < 3; ++i) {
    engine::CampaignSpec plain = make_spec(overhead_cfg);
    const double p = engine::run_campaign(plain).timing.wall_s;
    if (i == 0 || p < plain_s) plain_s = p;
    engine::CampaignSpec traced = make_spec(overhead_cfg);
    traced.emit_telemetry = true;
    traced.trace_path = "BENCH_engine_scaling_trace.json";
    const double t = engine::run_campaign(traced).timing.wall_s;
    if (i == 0 || t < traced_s) traced_s = t;
  }
  const double budget_s = plain_s * 1.05 + 0.010;
  const bool overhead_ok = traced_s <= budget_s;
  std::cout << "tracing overhead (thread_pool x4, best of 3): plain "
            << plain_s * 1e3 << " ms, instrumented " << traced_s * 1e3
            << " ms, budget " << budget_s * 1e3 << " ms -> "
            << (overhead_ok ? "ok" : "EXCEEDED") << "\n";
  std::cout << "trace written to BENCH_engine_scaling_trace.json\n\n";

  // Single JSON object for the bench trajectory, mirrored to a file.
  const std::string json =
      std::string("{\"bench\":\"engine_scaling\",") +
      "\"circuit\":\"parity_tree_64\",\"faults\":" +
      std::to_string(totals.total) +
      ",\"patterns\":" + std::to_string(ref.jobs[0].pattern_count) +
      ",\"hardware_threads\":" +
      std::to_string(engine::ThreadPool::hardware_threads()) +
      ",\"deterministic\":" + (all_identical ? "true" : "false") +
      ",\"tracing_overhead\":{\"plain_wall_s\":" + std::to_string(plain_s) +
      ",\"instrumented_wall_s\":" + std::to_string(traced_s) +
      ",\"within_budget\":" + (overhead_ok ? "true" : "false") + "}" +
      ",\"runs\":[" + json_line + "]}";
  std::ofstream("BENCH_engine_scaling.json") << json << "\n";
  std::cout << json << "\n";

  return all_identical && overhead_ok ? 0 : 1;
}
