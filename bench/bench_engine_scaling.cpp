// Campaign-engine scaling: throughput (sampled faults x patterns per
// second) of the same parity_tree(64) campaign at 1/2/4/8 threads.  The
// deterministic JSON of every run is checked against the 1-thread
// reference — a scaling number only counts if the answer is bit-identical.
// The last line printed is a single JSON object for the bench trajectory.
#include <iostream>
#include <string>

#include "engine/campaign.hpp"
#include "engine/thread_pool.hpp"
#include "logic/benchmarks.hpp"
#include "util/table.hpp"

int main() {
  using namespace cpsinw;

  const auto make_spec = [](int threads) {
    engine::CampaignSpec spec;
    spec.jobs.push_back({"parity_tree_64", logic::parity_tree(64)});
    spec.patterns.kind = engine::PatternSourceSpec::Kind::kRandom;
    spec.patterns.random_count = 128;
    spec.shard_size = 32;
    spec.seed = 1;
    spec.threads = threads;
    return spec;
  };

  std::cout << "=== Campaign-engine scaling: parity_tree(64), full CP fault "
               "universe, 128 random patterns ===\n";
  std::cout << "hardware threads: " << engine::ThreadPool::hardware_threads()
            << "\n\n";

  // Warm-up run (page-faults, allocator) outside the measured set.
  (void)engine::run_campaign(make_spec(1));

  util::AsciiTable table({"threads", "shards", "wall [ms]",
                          "faults x patterns / s", "speedup vs 1T",
                          "identical JSON"});
  std::string json_line;
  double wall_1t = 0.0;
  std::string reference_json;
  bool all_identical = true;

  for (const int threads : {1, 2, 4, 8}) {
    const engine::CampaignReport report =
        engine::run_campaign(make_spec(threads));
    const std::string stable = report.to_json(false);
    if (threads == 1) {
      reference_json = stable;
      wall_1t = report.timing.wall_s;
    }
    const bool identical = stable == reference_json;
    all_identical = all_identical && identical;

    const double speedup =
        report.timing.wall_s > 0.0 ? wall_1t / report.timing.wall_s : 0.0;
    table.add_row({std::to_string(threads),
                   std::to_string(report.timing.shard_count),
                   std::to_string(report.timing.wall_s * 1e3),
                   std::to_string(report.timing.fault_patterns_per_s),
                   std::to_string(speedup), identical ? "yes" : "NO"});

    if (!json_line.empty()) json_line += ",";
    json_line += "{\"threads\":" + std::to_string(threads) +
                 ",\"wall_s\":" + std::to_string(report.timing.wall_s) +
                 ",\"fault_patterns_per_s\":" +
                 std::to_string(report.timing.fault_patterns_per_s) +
                 ",\"speedup\":" + std::to_string(speedup) +
                 ",\"identical\":" + (identical ? "true" : "false") + "}";
  }
  table.print(std::cout);

  const engine::CampaignReport ref = engine::run_campaign(make_spec(1));
  const engine::ClassStats totals = ref.totals();
  std::cout << "\nworkload: " << totals.total << " faults x "
            << ref.jobs[0].pattern_count << " patterns, coverage "
            << totals.coverage() << "\n";
  std::cout << "determinism: "
            << (all_identical ? "all runs bit-identical"
                              : "MISMATCH ACROSS THREAD COUNTS")
            << "\n\n";

  // Single JSON line for the bench trajectory.
  std::cout << "{\"bench\":\"engine_scaling\",\"circuit\":\"parity_tree_64\","
               "\"faults\":"
            << totals.total << ",\"patterns\":" << ref.jobs[0].pattern_count
            << ",\"hardware_threads\":"
            << engine::ThreadPool::hardware_threads()
            << ",\"deterministic\":" << (all_identical ? "true" : "false")
            << ",\"runs\":[" << json_line << "]}\n";

  return all_identical ? 0 : 1;
}
