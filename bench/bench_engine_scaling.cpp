// Campaign-engine scaling across execution backends: throughput (sampled
// faults x patterns per second) of the same parity_tree(64) campaign on
// the inline reference, the thread pool at 1/2/4/8 threads, the
// subprocess worker backend, and a loopback remote shard server.  The
// deterministic JSON of every run is checked against the inline reference
// — a scaling number only counts if the answer is bit-identical.  Results
// land in BENCH_engine_scaling.json (also the last stdout line) so the
// bench trajectory captures executor overhead per backend over time.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/net.hpp"
#include "engine/thread_pool.hpp"
#include "logic/benchmarks.hpp"
#include "util/table.hpp"

namespace {

std::string worker_path() {
#ifdef CPSINW_SHARD_WORKER_PATH
  return CPSINW_SHARD_WORKER_PATH;
#else
  return {};
#endif
}

std::string server_path() {
#ifdef CPSINW_SHARD_SERVER_PATH
  return CPSINW_SHARD_SERVER_PATH;
#else
  return {};
#endif
}

struct RunConfig {
  cpsinw::engine::ExecutorBackend backend;
  int threads;
};

}  // namespace

int main() {
  using namespace cpsinw;

  // One loopback shard server stands in for a remote host; the RAII
  // handle kills it at exit.
  std::unique_ptr<engine::net::LocalServerProcess> server;
  if (!server_path().empty()) {
    server = std::make_unique<engine::net::LocalServerProcess>(server_path());
    if (!server->ok()) {
      std::cout << "(shard server failed to start: " << server->error()
                << "; remote backend skipped)\n";
      server.reset();
    }
  }

  const auto make_spec = [&server](const RunConfig& cfg) {
    engine::CampaignSpec spec;
    spec.jobs.push_back({"parity_tree_64", logic::parity_tree(64)});
    spec.patterns.kind = engine::PatternSourceSpec::Kind::kRandom;
    spec.patterns.random_count = 128;
    spec.shard_size = 32;
    spec.seed = 1;
    spec.threads = cfg.threads;
    spec.executor.backend = cfg.backend;
    if (cfg.backend == engine::ExecutorBackend::kSubprocess)
      spec.executor.worker_path = worker_path();
    if (cfg.backend == engine::ExecutorBackend::kRemote) {
      spec.executor.endpoints = {server->endpoint()};
      // The reported thread count must be the real concurrency: lift the
      // per-endpoint cap so the single loopback endpoint can actually
      // serve cfg.threads shards at once.
      spec.executor.remote_max_in_flight = cfg.threads;
    }
    return spec;
  };

  std::cout << "=== Campaign-engine scaling: parity_tree(64), full CP fault "
               "universe, 128 random patterns, per-backend ===\n";
  std::cout << "hardware threads: " << engine::ThreadPool::hardware_threads()
            << "\n\n";

  std::vector<RunConfig> configs = {
      {engine::ExecutorBackend::kInline, 1},
      {engine::ExecutorBackend::kThreadPool, 1},
      {engine::ExecutorBackend::kThreadPool, 2},
      {engine::ExecutorBackend::kThreadPool, 4},
      {engine::ExecutorBackend::kThreadPool, 8},
  };
  if (!worker_path().empty())
    configs.push_back({engine::ExecutorBackend::kSubprocess,
                       engine::ThreadPool::hardware_threads()});
  else
    std::cout << "(no worker path compiled in: subprocess backend skipped)\n";
  if (server != nullptr)
    configs.push_back({engine::ExecutorBackend::kRemote,
                       engine::ThreadPool::hardware_threads()});

  // Warm-up run (page-faults, allocator) outside the measured set.
  (void)engine::run_campaign(make_spec(configs[0]));

  util::AsciiTable table({"backend", "threads", "shards", "wall [ms]",
                          "faults x patterns / s", "speedup vs inline",
                          "identical JSON"});
  std::string json_line;
  double wall_inline = 0.0;
  std::string reference_json;
  bool all_identical = true;

  for (const RunConfig& cfg : configs) {
    const engine::CampaignReport report =
        engine::run_campaign(make_spec(cfg));
    const std::string stable = report.to_json(false);
    if (reference_json.empty()) {
      reference_json = stable;
      wall_inline = report.timing.wall_s;
    }
    const bool identical = stable == reference_json;
    all_identical = all_identical && identical;

    const double speedup =
        report.timing.wall_s > 0.0 ? wall_inline / report.timing.wall_s : 0.0;
    table.add_row({report.timing.backend, std::to_string(cfg.threads),
                   std::to_string(report.timing.shard_count),
                   std::to_string(report.timing.wall_s * 1e3),
                   std::to_string(report.timing.fault_patterns_per_s),
                   std::to_string(speedup), identical ? "yes" : "NO"});

    if (!json_line.empty()) json_line += ",";
    json_line += "{\"backend\":\"" + report.timing.backend +
                 "\",\"threads\":" + std::to_string(cfg.threads) +
                 ",\"wall_s\":" + std::to_string(report.timing.wall_s) +
                 ",\"fault_patterns_per_s\":" +
                 std::to_string(report.timing.fault_patterns_per_s) +
                 ",\"speedup_vs_inline\":" + std::to_string(speedup) +
                 ",\"identical\":" + (identical ? "true" : "false") + "}";
  }
  table.print(std::cout);

  const engine::CampaignReport ref = engine::run_campaign(
      make_spec({engine::ExecutorBackend::kInline, 1}));
  const engine::ClassStats totals = ref.totals();
  std::cout << "\nworkload: " << totals.total << " faults x "
            << ref.jobs[0].pattern_count << " patterns, coverage "
            << totals.coverage() << "\n";
  std::cout << "determinism: "
            << (all_identical
                    ? "all backends and thread counts bit-identical"
                    : "MISMATCH ACROSS BACKENDS")
            << "\n\n";

  // Single JSON object for the bench trajectory, mirrored to a file.
  const std::string json =
      std::string("{\"bench\":\"engine_scaling\",") +
      "\"circuit\":\"parity_tree_64\",\"faults\":" +
      std::to_string(totals.total) +
      ",\"patterns\":" + std::to_string(ref.jobs[0].pattern_count) +
      ",\"hardware_threads\":" +
      std::to_string(engine::ThreadPool::hardware_threads()) +
      ",\"deterministic\":" + (all_identical ? "true" : "false") +
      ",\"runs\":[" + json_line + "]}";
  std::ofstream("BENCH_engine_scaling.json") << json << "\n";
  std::cout << json << "\n";

  return all_identical ? 0 : 1;
}
