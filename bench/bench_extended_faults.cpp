// Extension experiment: the two additional fault universes the paper's
// background motivates — transition (gross-delay) faults (GOS and
// sub-threshold floating gates manifest as delay faults) and inter-net
// bridging faults (metallization defects of Table I, classically tested
// by IDDQ) — with full ATPG coverage on the benchmark netlists.
#include <iostream>

#include "atpg/bridge_atpg.hpp"
#include "atpg/transition.hpp"
#include "logic/benchmarks.hpp"
#include "util/table.hpp"

int main() {
  using namespace cpsinw;

  struct Named {
    std::string name;
    logic::Circuit ckt;
  };
  std::vector<Named> circuits;
  circuits.push_back({"c17", logic::c17()});
  circuits.push_back({"full_adder", logic::full_adder()});
  circuits.push_back({"ripple_adder_4", logic::ripple_adder(4)});
  circuits.push_back({"parity_tree_8", logic::parity_tree(8)});
  circuits.push_back({"multiplier_2x2", logic::multiplier_2x2()});
  circuits.push_back({"alu_slice", logic::alu_slice()});

  std::cout << "=== Transition (gross-delay) fault ATPG ===\n";
  std::cout << "(launch justifies the pre-transition value; capture is a "
               "stuck-at test for the late value)\n\n";
  util::AsciiTable tr({"Circuit", "faults", "detected", "untestable",
                       "aborted", "coverage [%]"});
  for (const Named& n : circuits) {
    const atpg::TransitionCoverage cov =
        atpg::generate_all_transition_tests(n.ckt);
    tr.row()
        .cell(n.name)
        .cell(std::to_string(cov.total))
        .cell(std::to_string(cov.detected))
        .cell(std::to_string(cov.untestable))
        .cell(std::to_string(cov.aborted))
        .num(100.0 * cov.coverage(), 1);
  }
  tr.print(std::cout);

  std::cout << "\n=== Bridging-fault IDDQ ATPG (adjacent-net universe, "
               "4 behaviours per pair) ===\n\n";
  util::AsciiTable br({"Circuit", "bridges", "IDDQ covered",
                       "also output-visible", "IDDQ patterns",
                       "coverage [%]"});
  for (const Named& n : circuits) {
    const atpg::BridgeCoverage cov = atpg::generate_all_bridge_tests(n.ckt);
    br.row()
        .cell(n.name)
        .cell(std::to_string(cov.total))
        .cell(std::to_string(cov.iddq_covered))
        .cell(std::to_string(cov.also_output_detectable))
        .cell(std::to_string(static_cast<int>(cov.iddq_patterns.size())))
        .num(100.0 * cov.coverage(), 1);
  }
  br.print(std::cout);

  std::cout << "\nReading guide: IDDQ covers essentially the whole bridge "
               "universe with one pattern\nper net pair (excite opposite "
               "values), while voltage observation alone sees only a\n"
               "fraction — the supply-current observable carries the "
               "paper's polarity faults and the\nclassical bridges alike.\n";
  return 0;
}
