// Reproduces paper Table I: the TIG-SiNWFET fabrication steps, the defects
// each step can introduce, and the fault models that cover them — then
// runs the inductive fault analysis sampling pass on a benchmark circuit
// to show the resulting fault population.
#include <iostream>

#include "core/cp_fault_models.hpp"
#include "faults/ifa.hpp"
#include "logic/benchmarks.hpp"
#include "util/table.hpp"

int main() {
  using namespace cpsinw;

  std::cout << "=== Table I: TIG-SiNWFET fabrication process steps and "
               "related defect model ===\n\n";

  util::AsciiTable table({"#", "Process", "Outcome", "Possible defects"});
  int step_no = 1;
  for (const faults::ProcessStep step : faults::all_process_steps()) {
    std::string defects;
    for (const faults::DefectMechanism m : faults::mechanisms_of(step)) {
      if (!defects.empty()) defects += ", ";
      defects += to_string(m);
    }
    table.add_row({"(" + std::to_string(step_no++) + ")", to_string(step),
                   faults::outcome_of(step), defects});
  }
  table.print(std::cout);

  std::cout << "\n=== Fault-model coverage per defect mechanism "
               "(paper Secs. V-A..V-C) ===\n\n";
  util::AsciiTable cov({"Defect mechanism", "SP gates", "DP gates"});
  for (const faults::DefectMechanism m :
       {faults::DefectMechanism::kNanowireBreak,
        faults::DefectMechanism::kGateOxideShort,
        faults::DefectMechanism::kGateBridge,
        faults::DefectMechanism::kInterconnectBridge,
        faults::DefectMechanism::kFloatingGate}) {
    const auto fmt = [&](bool dp) {
      std::string s;
      for (const core::CpFaultModel model : core::recommended_models(m, dp)) {
        if (!s.empty()) s += ", ";
        s += core::to_string(model);
        if (core::is_new_model(model)) s += " [NEW]";
      }
      return s;
    };
    cov.add_row({to_string(m), fmt(false), fmt(true)});
  }
  cov.print(std::cout);

  std::cout << "\n=== Inductive fault analysis: sampled defect population "
               "(4-bit ripple-carry adder, seed 1, 2000 samples) ===\n\n";
  const logic::Circuit ckt = logic::ripple_adder(4);
  faults::IfaOptions opt;
  opt.sample_count = 2000;
  const faults::IfaReport report = faults::run_ifa(ckt, opt);

  util::AsciiTable stats({"Process step", "Sampled defects"});
  for (const faults::ProcessStep step : faults::all_process_steps()) {
    const auto it = report.per_step.find(step);
    stats.add_row({to_string(step),
                   std::to_string(it == report.per_step.end() ? 0
                                                              : it->second)});
  }
  stats.print(std::cout);

  util::AsciiTable mech({"Defect mechanism", "Count"});
  for (const auto& [m, count] : report.per_mechanism)
    mech.add_row({to_string(m), std::to_string(count)});
  std::cout << '\n';
  mech.print(std::cout);

  std::cout << "\nParametric-only defects (GOS; delay/IDDQ signature): "
            << report.parametric_only << '\n';
  std::cout << "Channel breaks in DP gates (masked; need the paper's new "
               "procedure): "
            << report.masked_without_cb << '\n';
  std::cout << "\nCircuit: " << ckt.gate_count() << " gates, "
            << ckt.transistor_count() << " transistors\n";
  return 0;
}
