// Ablation & variation studies for the modeling choices DESIGN.md calls
// out:
//
//  1. Monte-Carlo process variation (paper Sec. II: line-edge roughness
//     and process variation -> delay faults): sample the device
//     calibration parameters and report the INV delay / leakage spread —
//     the parametric fault population that motivates delay-fault testing.
//
//  2. Drive-asymmetry ablation: DESIGN.md attributes the Table III
//     output-detectability split (pull-down polarity faults flip the
//     output, pull-up ones lose the contention) to the electron/hole
//     drive ratio.  Sweeping mu_n/mu_p shows where the paper's outcome
//     holds and where it would break.
//
//  3. Stuck-open threshold sensitivity: how the Fig. 5 V_cut ~ 0.56 V SOF
//     onset moves with the injection-barrier calibration.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <numeric>

#include "gates/spice_builder.hpp"
#include "spice/dcop.hpp"
#include "spice/measure.hpp"
#include "spice/transient.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace cpsinw;
constexpr double kVdd = 1.2;

double inverter_delay(const device::TigParams& params) {
  gates::CellCircuitSpec spec;
  spec.kind = gates::CellKind::kInv;
  spec.params = params;
  spec.inputs = {spice::Waveform::step(kVdd, 0.0, 0.2e-9, 10e-12)};
  gates::CellCircuit cc = gates::build_cell_circuit(spec);
  spice::TranOptions opt;
  opt.t_stop = 2.5e-9;
  opt.dt = 2e-12;
  const spice::TranResult tr = spice::transient(cc.ckt, opt);
  if (!tr.converged) return std::nan("");
  const spice::DelayMeasurement d =
      spice::propagation_delay(tr, cc.ins[0], cc.out, kVdd / 2.0, 0.1e-9);
  return d.valid ? d.delay : std::nan("");
}

double inverter_leakage(const device::TigParams& params) {
  gates::CellCircuitSpec spec;
  spec.kind = gates::CellKind::kInv;
  spec.params = params;
  spec.inputs = {spice::Waveform::dc(kVdd)};
  gates::CellCircuit cc = gates::build_cell_circuit(spec);
  const spice::DcResult op = spice::dc_operating_point(cc.ckt);
  return op.converged ? spice::iddq_total(op) : std::nan("");
}

}  // namespace

int main() {
  std::cout << "=== Variation & ablation studies ===\n";

  // ----- 1. Monte-Carlo process variation --------------------------------
  std::cout << "\n--- 1. Monte-Carlo device variation (25 samples; "
               "sigma(V_Th) = 30 mV, sigma(k_n) = 10 %, sigma(barrier "
               "onset) = 40 mV — LER-motivated) ---\n\n";
  util::SplitMix64 rng(2015);
  std::vector<double> delays, leaks;
  for (int s = 0; s < 25; ++s) {
    device::TigParams p;
    p.vth_n = std::clamp(rng.normal(p.vth_n, 0.030), 0.25, 0.60);
    p.vth_p = std::clamp(rng.normal(p.vth_p, 0.030), 0.25, 0.60);
    p.k_n = p.k_n * std::exp(rng.normal(0.0, 0.10));
    p.pg_onset_inj = std::clamp(rng.normal(p.pg_onset_inj, 0.040),
                                0.55, 0.95);
    const double d = inverter_delay(p);
    const double l = inverter_leakage(p);
    if (std::isfinite(d)) delays.push_back(d);
    if (std::isfinite(l)) leaks.push_back(l);
  }
  const auto stats = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const double mean =
        std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
    return std::tuple<double, double, double>(v.front(), mean, v.back());
  };
  {
    const auto [dmin, dmean, dmax] = stats(delays);
    const auto [lmin, lmean, lmax] = stats(leaks);
    util::AsciiTable t({"metric", "min", "mean", "max", "max/min"});
    t.row()
        .cell("INV delay [ps]")
        .num(util::to_ps(dmin), 1)
        .num(util::to_ps(dmean), 1)
        .num(util::to_ps(dmax), 1)
        .num(dmax / dmin, 2);
    t.row()
        .cell("INV leakage [nA]")
        .num(util::to_na(lmin), 3)
        .num(util::to_na(lmean), 3)
        .num(util::to_na(lmax), 3)
        .num(lmax / lmin, 2);
    t.print(std::cout);
    std::cout << "\nReading: the delay spread across process corners is "
                 "the parametric fault\npopulation that small-V_cut "
                 "floating gates and GOS devices join (delay-fault "
                 "region\nof Fig. 5).\n";
  }

  // ----- 2. Drive-asymmetry ablation --------------------------------------
  std::cout << "\n--- 2. mu_n/mu_p ablation: XOR2 t3 stuck-at-n-type at "
               "A=0,B=1 (paper Table III says the pull-down fault flips "
               "the output) ---\n\n";
  util::AsciiTable ab({"mu_n/mu_p", "Vout faulty [V]", "reads as",
                       "IDDQ [A]", "Table III outcome holds"});
  for (const double ratio : {1.0, 1.5, 2.0, 3.0}) {
    device::TigParams p;
    p.mu_ratio = ratio;
    gates::CellCircuitSpec spec;
    spec.kind = gates::CellKind::kXor2;
    spec.params = p;
    spec.inputs = gates::dc_inputs(gates::CellKind::kXor2, 0b10u, kVdd);
    spec.pg_forces.push_back({2, kVdd});
    gates::CellCircuit cc = gates::build_cell_circuit(spec);
    const spice::DcResult op = spice::dc_operating_point(cc.ckt);
    const double vout = op.voltage(cc.out);
    const char* read = vout <= 0.45 ? "0 (flip)"
                       : vout >= 0.75 ? "1 (masked)"
                                      : "X";
    ab.row()
        .num(ratio, 1)
        .num(vout, 3)
        .cell(read)
        .sci(spice::iddq_total(op), 2)
        .boolean(vout < 0.75);
  }
  ab.print(std::cout);
  std::cout << "\nReading: with equal drives the pull-down fault could "
               "not win the contention\ncleanly; the calibrated "
               "electron/hole asymmetry (x2) is what produces the "
               "paper's\nwrong-output observation for t3/t4.\n";

  // ----- 3. SOF threshold sensitivity -------------------------------------
  std::cout << "\n--- 3. Stuck-open V_cut threshold vs injection-barrier "
               "onset (paper: ~0.56 V) ---\n\n";
  util::AsciiTable sof({"pg_onset_inj [V]", "V_cut at 5x delay [V]"});
  for (const double onset : {0.65, 0.70, 0.75, 0.80}) {
    device::TigParams p;
    p.pg_onset_inj = onset;
    const double nominal = inverter_delay(p);
    // Scan the p pull-up PGS cut upward until delay exceeds 5x nominal.
    double threshold = std::nan("");
    for (double vcut = 0.30; vcut <= 0.80; vcut += 0.02) {
      gates::CellCircuitSpec spec;
      spec.kind = gates::CellKind::kInv;
      spec.params = p;
      spec.inputs = {spice::Waveform::step(kVdd, 0.0, 0.2e-9, 10e-12)};
      spec.pg_floats.push_back({0, gates::PgTerminal::kPgs, vcut});
      gates::CellCircuit cc = gates::build_cell_circuit(spec);
      spice::TranOptions opt;
      opt.t_stop = 4e-9;
      opt.dt = 4e-12;
      const spice::TranResult tr = spice::transient(cc.ckt, opt);
      const spice::DelayMeasurement d = spice::propagation_delay(
          tr, cc.ins[0], cc.out, kVdd / 2.0, 0.1e-9);
      if (!d.valid || d.delay > 5.0 * nominal) {
        threshold = vcut;
        break;
      }
    }
    sof.row().num(onset, 2).num(threshold, 2);
  }
  sof.print(std::cout);
  std::cout << "\nReading: the calibrated onset (0.75 V) reproduces the "
               "paper's ~0.56 V stuck-open\nthreshold; the threshold "
               "tracks the barrier calibration one-to-one, which is why "
               "it\nis a device-level anchor in DESIGN.md.\n";
  return 0;
}
