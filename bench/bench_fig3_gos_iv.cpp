// Reproduces paper Fig. 3: I-V characteristics of the n-type TIG-SiNWFET
// with and without a gate-oxide short on PGS, CG and PGD.
#include <iostream>

#include "core/experiments.hpp"
#include "util/table.hpp"

int main() {
  using namespace cpsinw;
  const core::Fig3Data data = core::run_fig3(25);

  std::cout << "=== Fig. 3: n-type TIG-SiNWFET with/without GOS ===\n\n";
  std::cout << "Summary (paper anchors: GOS@PGS -> strong I_DSAT drop and "
               "dV_Th = +170 mV;\n"
               "GOS@CG -> milder drop; GOS@PGD -> slight increase, no "
               "V_Th impact;\n"
               "negative I_D at low V_D for source-side shorts):\n\n";

  util::AsciiTable summary({"Case", "I_DSAT [A]", "I_DSAT / fault-free",
                            "V_Th [V]", "dV_Th vs FF [mV]",
                            "min I_D (output sweep) [A]"});
  for (const core::Fig3Case& c : data.cases) {
    summary.row()
        .cell(c.label)
        .sci(c.i_sat, 3)
        .num(c.isat_ratio_vs_ff, 3)
        .num(c.vth, 3)
        .num(c.delta_vth_vs_ff * 1e3, 1)
        .sci(c.min_output_current, 2);
  }
  summary.print(std::cout);

  std::cout << "\n--- Transfer curves: I_D vs V_CG at V_DS = 1.2 V "
               "(Fig. 3a-c series) ---\n\n";
  for (const core::Fig3Case& c : data.cases) {
    c.transfer.print(std::cout, 4);
    std::cout << '\n';
  }

  std::cout << "--- Output curves: I_D vs V_D at V_CG = 1.2 V (negative "
               "I_D at low V_D with GOS) ---\n\n";
  for (const core::Fig3Case& c : data.cases) {
    c.output.print(std::cout, 4);
    std::cout << '\n';
  }
  return 0;
}
