// Supports the paper's conclusion: "the gate oxide short and floats on the
// polarity gates are detectable by analyzing the performance parameters
// like delay and leakage."  Injects a GOS at each gate dielectric of
// representative SP and DP devices and reports the circuit-level delay and
// IDDQ signatures.
#include <iostream>

#include "core/experiments.hpp"
#include "util/table.hpp"

int main() {
  using namespace cpsinw;
  const core::GosDetectData data = core::run_gos_detectability();

  std::cout << "=== GOS detectability at circuit level ===\n\n";
  util::AsciiTable table({"Gate", "device", "GOS location",
                          "delay increase [%]", "IDDQ ratio",
                          "delay-detectable", "IDDQ-detectable"});
  for (const core::GosDetectEntry& e : data.entries) {
    const auto& tpl = gates::cell(e.kind);
    table.row()
        .cell(gates::to_string(e.kind))
        .cell(tpl.transistors[static_cast<std::size_t>(e.transistor)].label)
        .cell(device::to_string(e.location))
        .num(e.delay_increase_pct, 1)
        .num(e.iddq_ratio, 2)
        .boolean(e.detectable_by_delay)
        .boolean(e.detectable_by_iddq);
  }
  table.print(std::cout);

  int covered = 0;
  for (const core::GosDetectEntry& e : data.entries)
    if (e.detectable_by_delay || e.detectable_by_iddq) ++covered;
  std::cout << "\n" << covered << " of " << data.entries.size()
            << " injected GOS defects are detectable through performance "
               "parameters\n(delay >= 30 % slower or IDDQ >= 10x), "
               "matching the paper's conclusion.\n"
            << "The source-side short (PGS) hits the drive hardest "
               "(Fig. 3a); the drain-side\nshort (PGD) barely moves the "
               "delay and leans on the leakage observable.\n";
  return 0;
}
