// Reproduces paper Sec. V-C: channel break in dynamic-polarity gates —
// the masking effect (function preserved, bounded delay/leakage change)
// and the paper's new polarity-complement detection procedure, evaluated
// at both switch level and SPICE level on the 2-input XOR (FO4).
#include <iostream>

#include "core/experiments.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace cpsinw;
  const core::Sec5cData data = core::run_sec5c();

  std::cout << "=== Sec. V-C: channel break in the DP XOR2 ===\n\n";
  std::cout << "--- Masking: behaviour of the broken gate under normal "
               "operation ---\n";
  std::cout << "(paper: functionality preserved; Delta-leakage <= 100 %, "
               "Delta-delay <= 58 %)\n\n";
  util::AsciiTable mask({"Device", "DC function preserved",
                         "worst delay increase [%]",
                         "leakage change [%]"});
  for (const core::Sec5cEntry& e : data.entries) {
    mask.row()
        .cell("t" + std::to_string(e.transistor + 1))
        .boolean(e.function_preserved_dc)
        .num(e.worst_delay_increase_pct, 1)
        .num(e.leakage_change_pct, 1);
  }
  mask.print(std::cout);

  std::cout << "\n--- The new detection procedure: complement the device "
               "polarity through the\n"
               "    dual-rail inputs, apply the polarity-fault vector, "
               "compare responses ---\n\n";
  util::AsciiTable proc({"Device", "test exists", "switch-level verdict",
                         "IDDQ intact [A]", "IDDQ broken [A]",
                         "SPICE distinguishes"});
  for (const core::Sec5cEntry& e : data.entries) {
    proc.row()
        .cell("t" + std::to_string(e.transistor + 1))
        .boolean(e.cb_test_exists)
        .boolean(e.cb_distinguishes_cell)
        .sci(e.cb_iddq_intact_a, 2)
        .sci(e.cb_iddq_broken_a, 2)
        .boolean(e.cb_spice_distinguishes);
  }
  proc.print(std::cout);

  std::cout << "\nInterpretation: an intact device conducts against the "
               "opposite network under the\n"
               "polarity-complemented stimulus (micro-amp IDDQ / wrong "
               "output); a broken channel cannot\n"
               "conduct, so the response stays clean — the clean response "
               "reveals the break, exactly\n"
               "the decision rule of the paper's algorithm.\n";
  return 0;
}
