// Extension experiment: full test-flow coverage on the benchmark netlists,
// comparing the classical flow (stuck-at + two-pattern, voltage-observed)
// against the flow extended with the paper's new models (IDDQ polarity
// tests and the channel-break procedure).
#include <iostream>

#include "core/experiments.hpp"
#include "util/table.hpp"

int main() {
  using namespace cpsinw;
  const core::AtpgCoverageData data = core::run_atpg_coverage();

  std::cout << "=== ATPG coverage: classical flow vs flow with the "
               "paper's new fault models ===\n\n";
  util::AsciiTable table({"Circuit", "gates", "transistors", "faults",
                          "classical cov.", "full cov.", "via IDDQ",
                          "via 2-pattern", "via CB proc."});
  for (const core::CoverageRow& row : data.rows) {
    table.row()
        .cell(row.circuit)
        .cell(std::to_string(row.gate_count))
        .cell(std::to_string(row.transistor_count))
        .cell(std::to_string(row.fault_count))
        .num(100.0 * row.classical_coverage, 1)
        .num(100.0 * row.full_coverage, 1)
        .cell(std::to_string(row.via_iddq))
        .cell(std::to_string(row.via_two_pattern))
        .cell(std::to_string(row.via_channel_break));
  }
  table.print(std::cout);

  std::cout << "\nReading guide: the coverage gap between the two flows is "
               "exactly the fault\n"
               "population the paper identifies — pull-up polarity bridges "
               "(IDDQ-only) and\n"
               "channel breaks masked by the DP pass-transistor redundancy "
               "(CB procedure).\n"
               "XOR/MAJ-rich circuits (adders, parity trees) show the "
               "largest gaps.\n";
  return 0;
}
